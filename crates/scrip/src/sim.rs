//! The scrip-economy round simulator.
//!
//! Each round one agent requests a unit of service:
//!
//! 1. the attacker (if any) first tops targets up to their thresholds —
//!    the monetary form of satiation;
//! 2. a requester is drawn uniformly;
//! 3. available altruists serve for free (and a rational requester always
//!    prefers free service);
//! 4. otherwise the request is *paid*: it fails if the requester is broke
//!    or no rational agent below threshold (and able to serve the
//!    requested service class) is available; a uniformly chosen volunteer
//!    earns the requester's scrip;
//! 5. with adaptive thresholds on, agents periodically raise their
//!    threshold after going broke and lower it when free service made
//!    money look worthless — the mechanism behind the EC'07 altruist
//!    crash.
//!
//! Money is conserved exactly: agents' balances plus the attacker's war
//! chest always sum to the initial supply (a property test enforces it).
//!
//! # Hot-loop invariants
//!
//! The per-round request loop is allocation-free in steady state: the
//! free/paid volunteer pools are scratch buffers owned by the sim struct,
//! cleared and refilled in place each round, and the timing layer
//! (`lotus_core::schedule`, `lotus_core::population`) adds no allocations
//! — threshold-trigger observations come from the running request
//! counters. Scratch contents are meaningless between rounds, and
//! refactors here must keep reports bit-identical per seed (the
//! determinism and schedule-golden tests are the guardrail).

use crate::attack::ScripAttack;
use crate::config::ScripConfig;
use lotus_core::bitset::BitSet;
use lotus_core::faults::{Fate, FaultCounters, FaultState};
use lotus_core::population::Population;
use lotus_core::satiation::Satiable;
use lotus_core::schedule::{MetricKey, ScheduleState};
use lotus_core::soa::ShardMap;
use netsim::plan::{ExchangePlan, PlannedPair, READY};
use netsim::rng::DetRng;
use netsim::round::RoundSim;
use netsim::{NodeId, Round};

/// Role of an agent in the economy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentRole {
    /// Threshold agent (volunteers iff balance < threshold).
    Rational,
    /// Always volunteers when available; serves for free.
    Altruist,
}

// Per-agent state lives in struct-of-arrays layout on the simulator
// itself (`money`, `threshold`, `served`, and the `altruist`/`special`/
// `targeted` bitsets), keyed by agent index — the flat layout the
// sharded volunteer scan iterates.

/// Final report of a scrip-economy run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScripReport {
    /// Rounds executed (including warm-up).
    pub rounds: Round,
    /// Fraction of measured requests satisfied (free or paid).
    pub service_rate: f64,
    /// Fraction of measured requests served free by altruists.
    pub free_rate: f64,
    /// Fraction of measured requests served by paid volunteers.
    pub paid_rate: f64,
    /// Fraction of measured requests that failed because the requester was
    /// broke.
    pub fail_broke_rate: f64,
    /// Fraction of measured requests that failed for lack of volunteers.
    pub fail_no_volunteer_rate: f64,
    /// Fraction of measured requests whose service delivery was lost to
    /// an injected message fault (always 0 on a perfect network).
    pub fail_faulted_rate: f64,
    /// Service rate restricted to special requests (1.0 when none occur).
    pub special_service_rate: f64,
    /// Mean over measured rounds of the fraction of rational agents at or
    /// above threshold (satiated).
    pub mean_satiated_fraction: f64,
    /// Fraction of target-round samples in which the target was satiated
    /// (`None` when the attack has no targets).
    pub target_satiation: Option<f64>,
    /// Mean rational threshold at the end of the run.
    pub mean_threshold: f64,
    /// Gini coefficient of agent balances at the end of the run.
    pub gini: f64,
    /// Attacker war chest at the end.
    pub attacker_money: u64,
    /// Total money (agents + attacker) — always the initial supply.
    pub total_money: u64,
    /// Fault-injection counters, present only when the plan was active
    /// (so fault-free reports stay byte-identical to pre-fault ones).
    pub fault_counters: Option<FaultCounters>,
}

/// Gini coefficient of a distribution (0 = perfectly equal).
///
/// Returns 0 for empty or all-zero distributions.
pub fn gini(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for (i, &v) in sorted.iter().enumerate() {
        weighted += (2.0 * (i as f64 + 1.0) - n - 1.0) * v as f64;
    }
    weighted / (n * total as f64)
}

/// The scrip-economy simulator.
///
/// ```
/// use scrip_economy::{ScripAttack, ScripConfig, ScripSim};
///
/// let cfg = ScripConfig::builder()
///     .agents(50)
///     .money_per_agent(6) // plentiful money: high efficiency (EC'07)
///     .threshold(8)
///     .rounds(2_000)
///     .warmup(200)
///     .build()?;
/// let report = ScripSim::new(cfg, ScripAttack::None, 7).run_to_report();
/// assert!(report.service_rate > 0.9, "healthy economy serves requests");
/// # Ok::<(), scrip_economy::config::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScripSim {
    cfg: ScripConfig,
    attack: ScripAttack,
    // ---- struct-of-arrays per-agent state, keyed by agent index ----
    money: Vec<u64>,
    threshold: Vec<u32>,
    /// Altruists (serve for free); everyone else is a threshold agent.
    altruist: BitSet,
    /// Providers of the rare special service.
    special: BitSet,
    /// Attack targets (kept topped up).
    targeted: BitSet,
    served: Vec<u64>,
    // Adaptive bookkeeping for the current interval.
    broke_failures: Vec<u32>,
    free_received: Vec<u32>,
    /// Rational agent indices, ascending (roles are fixed at build).
    rational_list: Vec<u32>,
    /// Attack-target indices, ascending (targets are fixed at build).
    target_list: Vec<u32>,
    /// Sharded activity index over agents: active = present ∧ ¬down,
    /// rebuilt word-parallel each round. The volunteer scan walks this
    /// instead of `0..n`, so its cost scales with live agents.
    shards: ShardMap,
    /// Word-parallel scratch mask for the rebuild above.
    mask_scratch: BitSet,
    attacker_money: u64,
    initial_supply: u64,
    rng: DetRng,
    round: Round,
    // Measured counters.
    requests: u64,
    served_free: u64,
    served_paid: u64,
    failed_broke: u64,
    failed_no_volunteer: u64,
    failed_faulted: u64,
    special_requests: u64,
    special_served: u64,
    satiated_samples: f64,
    satiated_rounds: u64,
    target_satiated_samples: u64,
    target_samples: u64,
    /// Attack timing stepper; while off, the attacker neither tops
    /// targets up nor bids for requests.
    schedule_state: ScheduleState,
    attack_active: bool,
    /// Membership under churn; everyone present without churn.
    population: Population,
    /// Fault injection (crashes, lost deliveries, the partition); a
    /// guaranteed no-op under an inactive plan.
    faults: FaultState,
    // Volunteer-pool scratch batches for the allocation-free request
    // loop (see module docs): each pool is an exchange plan whose
    // entries pair a volunteer with the round's requester, so the
    // requester's uniform `choose` draws the same indices it drew from
    // the bare index lists (only the pool *length* feeds the draw).
    free_pool: ExchangePlan,
    paid_pool: ExchangePlan,
}

impl ScripSim {
    /// Build a simulator, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation (use the builder, which validates).
    pub fn new(cfg: ScripConfig, attack: ScripAttack, seed: u64) -> Self {
        cfg.validate().expect("invalid ScripConfig");
        let rng = DetRng::seed_from(seed).fork("scrip");
        let n = cfg.agents as usize;
        let supply = cfg.total_supply();
        let endowment = attack.endowment(supply).min(supply);
        let circulating = supply - endowment;

        // Roles: special providers first, altruists last (disjoint by
        // validation).
        let mut money = vec![0u64; n];
        let threshold = vec![cfg.initial_threshold; n];
        let mut altruist = BitSet::new(n);
        let mut special = BitSet::new(n);
        let mut rational_list = Vec::new();
        for i in 0..n {
            if i >= n - cfg.altruists as usize {
                altruist.insert(i);
            } else {
                rational_list.push(i as u32);
            }
            if i < cfg.special_providers as usize {
                special.insert(i);
            }
        }

        // Distribute circulating scrip round-robin (near-equal start).
        for c in 0..circulating {
            money[(c % n as u64) as usize] += 1;
        }

        // Attack targets.
        let mut targeted = BitSet::new(n);
        match attack {
            ScripAttack::None => {}
            ScripAttack::LotusEater {
                target_fraction, ..
            } => {
                let k = ((n as f64) * target_fraction).round() as usize;
                let mut pick_rng = rng.fork("targets");
                for &idx in pick_rng
                    .sample_indices(rational_list.len(), k.min(rational_list.len()))
                    .iter()
                {
                    targeted.insert(rational_list[idx] as usize);
                }
            }
            ScripAttack::Retainer { .. } => {
                for i in special.iter() {
                    targeted.insert(i);
                }
            }
        }
        let target_list: Vec<u32> = targeted.iter().map(|i| i as u32).collect();

        let schedule_state = ScheduleState::seeded(cfg.schedule, rng.fork("adaptive"));
        // Forking never advances the parent, so adding the fault layer
        // is stream-invisible to every existing draw.
        let faults = FaultState::new(n, cfg.faults, &rng);
        let mut population = Population::new(n, cfg.churn, rng.fork("population"));
        // Flash-crowd agents are withdrawn now (index-ordered, no
        // randomness) and enter with their initial balance, having never
        // requested or served.
        population.set_arrival(cfg.arrival);
        ScripSim {
            cfg,
            attack,
            money,
            threshold,
            altruist,
            special,
            targeted,
            served: vec![0; n],
            broke_failures: vec![0; n],
            free_received: vec![0; n],
            rational_list,
            target_list,
            shards: ShardMap::new(n),
            mask_scratch: BitSet::new(n),
            schedule_state,
            attack_active: false,
            population,
            faults,
            attacker_money: endowment,
            initial_supply: supply,
            rng,
            round: 0,
            requests: 0,
            served_free: 0,
            served_paid: 0,
            failed_broke: 0,
            failed_no_volunteer: 0,
            failed_faulted: 0,
            special_requests: 0,
            special_served: 0,
            satiated_samples: 0.0,
            satiated_rounds: 0,
            target_satiated_samples: 0,
            target_samples: 0,
            free_pool: ExchangePlan::new(),
            paid_pool: ExchangePlan::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ScripConfig {
        &self.cfg
    }

    /// Current balance of `agent`.
    pub fn money(&self, agent: NodeId) -> u64 {
        self.money[agent.index()]
    }

    /// Current threshold of `agent`.
    pub fn threshold(&self, agent: NodeId) -> u32 {
        self.threshold[agent.index()]
    }

    /// The sharded activity index (this round's snapshot).
    pub fn shard_map(&self) -> &ShardMap {
        &self.shards
    }

    /// The attacker's current war chest.
    pub fn attacker_money(&self) -> u64 {
        self.attacker_money
    }

    /// Total money across agents and attacker (conserved).
    pub fn total_money(&self) -> u64 {
        self.attacker_money + self.money.iter().sum::<u64>()
    }

    /// The supply the system started with; [`Self::total_money`] must
    /// always equal this (conservation invariant).
    pub fn initial_supply(&self) -> u64 {
        self.initial_supply
    }

    /// Whether `agent` is an attack target.
    pub fn is_targeted(&self, agent: NodeId) -> bool {
        self.targeted.contains(agent.index())
    }

    fn measured(&self) -> bool {
        self.round >= self.cfg.warmup
    }

    /// Canonical-metric observation for metric-threshold schedules,
    /// computed from the running counters (no allocation). `None` until
    /// the counter in question has measured samples — an unmeasured
    /// metric must not latch a threshold trigger.
    fn observe(&self, key: MetricKey) -> Option<f64> {
        match key {
            MetricKey::OverallDelivery => {
                if self.requests == 0 {
                    None
                } else {
                    Some((self.served_free + self.served_paid) as f64 / self.requests as f64)
                }
            }
            MetricKey::TargetedService => {
                if self.target_samples == 0 {
                    None
                } else {
                    Some(self.target_satiated_samples as f64 / self.target_samples as f64)
                }
            }
            // Live membership state, not a service counter.
            MetricKey::PresentFraction => Some(self.population.present_fraction()),
            // The bank economy has no silence cut-off defense to report.
            MetricKey::FalseCutRate => None,
        }
    }

    /// Attack phase: top every target up to its threshold while the war
    /// chest lasts. Conservation: every unit moved comes from the chest.
    fn attack_phase(&mut self) {
        if matches!(self.attack, ScripAttack::None) {
            return;
        }
        // Targets are fixed, so the top-up walks the static target list
        // — O(targets), not O(agents) — in the same ascending order the
        // dense scan hit them (draw-free either way).
        for &ti in &self.target_list {
            let i = ti as usize;
            // A crashed target cannot be topped up, same as an absent one.
            if !self.population.is_present(i) || self.faults.is_down(i) {
                continue;
            }
            let need = u64::from(self.threshold[i]).saturating_sub(self.money[i]);
            let transfer = need.min(self.attacker_money);
            self.money[i] += transfer;
            self.attacker_money -= transfer;
        }
    }

    /// One request round.
    // lint: hot-loop
    fn request_round(&mut self) {
        let n = self.money.len();
        let mut rng = self.rng.fork_idx("round", self.round);
        let requester = rng.index(n);
        let special = rng.chance(self.cfg.special_request_prob);
        if !self.population.is_present(requester) {
            return; // the drawn requester is offline: no request this round
        }
        if self.faults.is_down(requester) {
            return; // a crashed requester cannot request either
        }

        // Volunteer pools (reused scratch batches): each viable
        // volunteer is planned against the requester, and the uniform
        // pick below draws only from the pool length — identical draws
        // to the bare index lists these plans replaced.
        let mut free = std::mem::take(&mut self.free_pool);
        let mut paid = std::mem::take(&mut self.paid_pool);
        free.clear();
        paid.clear();
        let requested = NodeId(requester as u32);
        // Shard walk over present ∧ ¬down agents in ascending index
        // order — exactly the agents the dense scan let through to the
        // availability draw (absent and down agents drew nothing under
        // the `||` short-circuit, and `link_ok`'s partition counter was
        // only reached past those gates), so the round's rng stream and
        // the fault counters are unchanged while the scan cost drops to
        // O(live agents).
        let availability = self.cfg.availability;
        self.shards.for_each_active(|i| {
            if i == requester || !self.faults.link_ok(requester, i) || !rng.chance(availability) {
                return;
            }
            if special && !self.special.contains(i) {
                return;
            }
            if self.altruist.contains(i) {
                free.push(PlannedPair {
                    initiator: NodeId(i as u32),
                    partner: requested,
                    flags: READY,
                });
            } else if self.money[i] < u64::from(self.threshold[i]) {
                paid.push(PlannedPair {
                    initiator: NodeId(i as u32),
                    partner: requested,
                    flags: READY,
                });
            }
        });
        // The attacker volunteers for ordinary paid requests, undercutting
        // honest providers ("providing cheap service", §1): a rational
        // requester prefers him whenever he bids, which both funds the
        // attack and starves honest agents of income.
        let attacker_bids = !special && self.attack_active && self.attack.provides();

        let measured = self.measured();
        if measured {
            self.requests += 1;
            if special {
                self.special_requests += 1;
            }
        }

        let outcome = if let Some(&e) = rng.choose(free.entries()) {
            let p = e.initiator.index();
            // Free service still rides the network: a lost delivery
            // means the requester got nothing (and the altruist's effort
            // is wasted — no served credit for a unit never received).
            if self.faults.fate(p, requester) == Fate::Drop {
                if measured {
                    self.failed_faulted += 1;
                }
                false
            } else {
                self.served[p] += 1;
                self.free_received[requester] += 1;
                if measured {
                    self.served_free += 1;
                }
                true
            }
        } else if self.money[requester] == 0 {
            self.broke_failures[requester] += 1;
            if measured {
                self.failed_broke += 1;
            }
            false
        } else if attacker_bids {
            // The attacker's channel is out-of-band infrastructure (like
            // the ideal-attack sync), exempt from injected faults.
            self.money[requester] -= 1;
            self.attacker_money += 1;
            if measured {
                self.served_paid += 1;
            }
            true
        } else if let Some(&e) = rng.choose(paid.entries()) {
            let p = e.initiator.index();
            // Payment on delivery: a lost shipment voids the sale — no
            // goods, no money movement, so the supply stays conserved.
            if self.faults.fate(p, requester) == Fate::Drop {
                if measured {
                    self.failed_faulted += 1;
                }
                false
            } else {
                self.money[requester] -= 1;
                self.money[p] += 1;
                self.served[p] += 1;
                if measured {
                    self.served_paid += 1;
                }
                true
            }
        } else {
            if measured {
                self.failed_no_volunteer += 1;
            }
            false
        };

        if measured && special && outcome {
            self.special_served += 1;
        }
        self.free_pool = free;
        self.paid_pool = paid;
    }

    /// Adaptive threshold update (EC'07 crash dynamics, simplified): an
    /// agent that went broke during the interval raises its threshold
    /// (money proved scarce); an agent that received free service and
    /// never went broke lowers it (money proved unnecessary). A threshold
    /// of zero means the agent has dropped out of the paid market.
    fn adapt_phase(&mut self) {
        if !self.cfg.adaptive
            || self.round == 0
            || !self
                .round
                .is_multiple_of(u64::from(self.cfg.adapt_interval))
        {
            return;
        }
        let max = self.cfg.max_threshold;
        for &ri in &self.rational_list {
            let i = ri as usize;
            if self.broke_failures[i] > 0 {
                self.threshold[i] = (self.threshold[i] + 1).min(max);
            } else if self.free_received[i] > 0 {
                self.threshold[i] = self.threshold[i].saturating_sub(1);
            }
            self.broke_failures[i] = 0;
            self.free_received[i] = 0;
        }
    }

    fn sample_satiation(&mut self) {
        if !self.measured() {
            return;
        }
        let rational = self.rational_list.len() as u64;
        let mut satiated = 0u64;
        for &ri in &self.rational_list {
            let i = ri as usize;
            let is_sat = self.money[i] >= u64::from(self.threshold[i]);
            if is_sat {
                satiated += 1;
            }
            if self.targeted.contains(i) {
                self.target_samples += 1;
                if is_sat {
                    self.target_satiated_samples += 1;
                }
            }
        }
        if rational > 0 {
            self.satiated_samples += satiated as f64 / rational as f64;
            self.satiated_rounds += 1;
        }
    }

    /// Run the configured horizon and produce the report.
    pub fn run_to_report(mut self) -> ScripReport {
        let total = self.cfg.warmup + self.cfg.rounds;
        while self.round < total {
            let t = self.round;
            self.round(t);
        }
        self.report()
    }

    /// Snapshot the report so far.
    pub fn report(&self) -> ScripReport {
        let req = self.requests.max(1) as f64;
        let rationals: Vec<u64> = self
            .rational_list
            .iter()
            .map(|&i| self.money[i as usize])
            .collect();
        let thresholds: Vec<f64> = self
            .rational_list
            .iter()
            .map(|&i| f64::from(self.threshold[i as usize]))
            .collect();
        ScripReport {
            rounds: self.round,
            service_rate: (self.served_free + self.served_paid) as f64 / req,
            free_rate: self.served_free as f64 / req,
            paid_rate: self.served_paid as f64 / req,
            fail_broke_rate: self.failed_broke as f64 / req,
            fail_no_volunteer_rate: self.failed_no_volunteer as f64 / req,
            fail_faulted_rate: self.failed_faulted as f64 / req,
            special_service_rate: if self.special_requests == 0 {
                1.0
            } else {
                self.special_served as f64 / self.special_requests as f64
            },
            mean_satiated_fraction: if self.satiated_rounds == 0 {
                0.0
            } else {
                self.satiated_samples / self.satiated_rounds as f64
            },
            target_satiation: if self.target_samples == 0 {
                None
            } else {
                Some(self.target_satiated_samples as f64 / self.target_samples as f64)
            },
            mean_threshold: if thresholds.is_empty() {
                0.0
            } else {
                thresholds.iter().sum::<f64>() / thresholds.len() as f64
            },
            gini: gini(&rationals),
            attacker_money: self.attacker_money,
            total_money: self.total_money(),
            fault_counters: if self.faults.is_active() {
                Some(self.faults.counters())
            } else {
                None
            },
        }
    }
}

impl RoundSim for ScripSim {
    // lint: hot-loop
    fn round(&mut self, t: Round) {
        debug_assert_eq!(t, self.round, "rounds must be sequential");
        self.population.begin_round(t);
        self.faults.begin_round(t);
        if !self.faults.just_crashed().is_empty() {
            // State-losing crash: the agent forgets its learned threshold
            // and interval bookkeeping, but keeps its balance — scrip is
            // a bank ledger, so crashes conserve the money supply.
            let initial = self.cfg.initial_threshold;
            for i in self.faults.just_crashed().iter() {
                self.threshold[i] = initial;
                self.broke_failures[i] = 0;
                self.free_received[i] = 0;
            }
        }
        // Rebuild the round's activity snapshot: active = present ∧
        // ¬down, word-parallel. Both the top-up and the volunteer scan
        // below see exactly the dense filter set.
        self.mask_scratch.copy_from(self.population.present());
        self.mask_scratch.subtract(self.faults.down_mask());
        self.shards.load(&self.mask_scratch);
        let observed = self
            .schedule_state
            .needs_observation()
            .and_then(|k| self.observe(k));
        self.attack_active = self.schedule_state.is_active(t, observed);
        if self.attack_active {
            self.attack_phase();
        }
        self.request_round();
        self.sample_satiation();
        self.round = t + 1;
        self.adapt_phase();
    }

    fn rounds_run(&self) -> Round {
        self.round
    }
}

impl lotus_core::scenario::Scenario for ScripSim {
    type Config = ScripConfig;
    type Attack = ScripAttack;
    type Report = ScripReport;
    const NAME: &'static str = "scrip";

    fn build(cfg: ScripConfig, attack: ScripAttack, seed: u64) -> Self {
        ScripSim::new(cfg, attack, seed)
    }

    fn step(&mut self) -> lotus_core::scenario::StepOutcome {
        let total = self.cfg.warmup + self.cfg.rounds;
        if self.round >= total {
            return lotus_core::scenario::StepOutcome::Done;
        }
        let t = self.round;
        RoundSim::round(self, t);
        if self.round >= total {
            lotus_core::scenario::StepOutcome::Done
        } else {
            lotus_core::scenario::StepOutcome::Continue
        }
    }

    fn report(&self) -> ScripReport {
        ScripSim::report(self)
    }

    fn arm_trace(&self) -> Option<&[lotus_core::adaptive::TraceEntry]> {
        self.schedule_state.arm_trace()
    }
}

impl lotus_core::scenario::Summarize for ScripReport {
    /// Common vocabulary for the scrip economy:
    ///
    /// * `overall_delivery` — the measured service rate (requests
    ///   satisfied, free or paid);
    /// * `targeted_service` — how satiated the attacker kept its targets
    ///   (0 when the attack has no targets);
    /// * `usable` — a functioning market: most requests get served.
    fn summarize(&self) -> lotus_core::scenario::ScenarioReport {
        let mut report = lotus_core::scenario::ScenarioReport::new(
            "scrip",
            self.rounds,
            self.service_rate,
            self.target_satiation.unwrap_or(0.0),
            self.service_rate > 0.5,
        )
        .with_metric("service_rate", self.service_rate)
        .with_metric("free_rate", self.free_rate)
        .with_metric("paid_rate", self.paid_rate)
        .with_metric("fail_broke_rate", self.fail_broke_rate)
        .with_metric("fail_no_volunteer_rate", self.fail_no_volunteer_rate)
        .with_metric("special_service_rate", self.special_service_rate)
        .with_metric("mean_satiated_fraction", self.mean_satiated_fraction)
        .with_metric("mean_threshold", self.mean_threshold)
        .with_metric("gini", self.gini)
        .with_metric("attacker_money", self.attacker_money as f64)
        .with_metric("total_money", self.total_money as f64)
        // 0.0 when the attack has no targets, so fraction sweeps that
        // include the no-attack point stay total.
        .with_metric("target_satiation", self.target_satiation.unwrap_or(0.0));
        // Fault metrics appear only under an active plan, keeping
        // fault-free report output byte-identical to pre-fault runs.
        if let Some(fc) = self.fault_counters {
            report = report
                .with_metric("fail_faulted_rate", self.fail_faulted_rate)
                .with_metric("faults_dropped", fc.dropped as f64)
                .with_metric("faults_duplicated", fc.duplicated as f64)
                .with_metric("faults_delayed", fc.delayed as f64)
                .with_metric("faults_crashes", fc.crashes as f64)
                .with_metric("faults_partition_blocked", fc.partition_blocked as f64);
        }
        report
    }
}

impl lotus_core::satiation::Feedable for ScripSim {
    /// Top the agent's balance up to its threshold from an *external*
    /// benefactor. Note this mints scrip: the Observation 3.1 harness
    /// models an outside attacker with unbounded funds, so the
    /// conservation invariant is deliberately suspended here (in-model
    /// attacks go through [`crate::attack::ScripAttack`], which conserves).
    fn feed_fully(&mut self, node: NodeId) {
        let i = node.index();
        self.money[i] = self.money[i].max(u64::from(self.threshold[i]));
    }

    fn step(&mut self) {
        let t = self.round;
        RoundSim::round(self, t);
    }
}

impl Satiable for ScripSim {
    fn node_count(&self) -> u32 {
        self.money.len() as u32
    }

    /// A rational agent is satiated at or above its threshold; altruists
    /// are never satiated (they serve regardless).
    fn is_satiated(&self, node: NodeId) -> bool {
        let i = node.index();
        !self.altruist.contains(i) && self.money[i] >= u64::from(self.threshold[i])
    }

    fn service_provided(&self, node: NodeId) -> u64 {
        self.served[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScripConfig;

    fn quick_cfg() -> ScripConfig {
        ScripConfig::builder()
            .agents(60)
            .money_per_agent(2)
            .threshold(4)
            .availability(0.6)
            .rounds(6_000)
            .warmup(500)
            .build()
            .unwrap()
    }

    #[test]
    fn healthy_economy_serves() {
        let report = ScripSim::new(quick_cfg(), ScripAttack::None, 1).run_to_report();
        // With m = 2 and k = 4 a fraction of requesters is naturally broke
        // (EC'07: efficiency grows with m); ~0.8 is the healthy level here.
        assert!(
            report.service_rate > 0.75,
            "service rate {}",
            report.service_rate
        );
        assert_eq!(report.free_rate, 0.0, "no altruists, no free service");
        assert_eq!(report.total_money, 120);
    }

    #[test]
    fn money_is_conserved() {
        let mut sim = ScripSim::new(quick_cfg(), ScripAttack::lotus_eater(0.3, 0.4), 2);
        for t in 0..2_000 {
            netsim::round::RoundSim::round(&mut sim, t);
            assert_eq!(sim.total_money(), 120, "supply must never change");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ScripSim::new(quick_cfg(), ScripAttack::lotus_eater(0.2, 0.3), 9).run_to_report();
        let b = ScripSim::new(quick_cfg(), ScripAttack::lotus_eater(0.2, 0.3), 9).run_to_report();
        assert_eq!(a, b);
    }

    #[test]
    fn satiated_agents_do_not_volunteer() {
        // With everyone above threshold (m >= k), no one volunteers for
        // paid service and the economy stalls.
        let cfg = ScripConfig::builder()
            .agents(40)
            .money_per_agent(5)
            .threshold(2)
            .rounds(2_000)
            .warmup(100)
            .build()
            .unwrap();
        let report = ScripSim::new(cfg, ScripAttack::None, 3).run_to_report();
        // Requests fail for lack of volunteers (requesters have money).
        assert!(
            report.fail_no_volunteer_rate > 0.9,
            "stalled economy, got {}",
            report.fail_no_volunteer_rate
        );
        assert!(report.mean_satiated_fraction > 0.9);
    }

    #[test]
    fn lotus_eater_satiates_targets_with_budget() {
        let attack = ScripAttack::lotus_eater(0.2, 0.5);
        let report = ScripSim::new(quick_cfg(), attack, 4).run_to_report();
        let sat = report.target_satiation.expect("targets exist");
        assert!(
            sat > 0.95,
            "well-funded attacker keeps targets satiated: {sat}"
        );
    }

    #[test]
    fn money_supply_bounds_satiable_fraction() {
        // m = 1, k = 6: satiating 80% of agents would need ~4.8x the whole
        // supply. Even an attacker holding *all* the money cannot do it.
        let cfg = ScripConfig::builder()
            .agents(50)
            .money_per_agent(1)
            .threshold(6)
            .rounds(4_000)
            .warmup(500)
            .build()
            .unwrap();
        let big = ScripAttack::lotus_eater(0.8, 1.0);
        let report = ScripSim::new(cfg, big, 5).run_to_report();
        let sat = report.target_satiation.expect("targets exist");
        assert!(sat < 0.5, "the money supply must cap satiation, got {sat}");
    }

    #[test]
    fn retainer_attack_denies_special_service() {
        let cfg = ScripConfig::builder()
            .agents(60)
            .money_per_agent(2)
            .threshold(4)
            .special_service(3, 0.05)
            .rounds(12_000)
            .warmup(500)
            .build()
            .unwrap();
        let clean = ScripSim::new(cfg.clone(), ScripAttack::None, 6).run_to_report();
        let attacked = ScripSim::new(cfg, ScripAttack::retainer(0.3), 6).run_to_report();
        assert!(
            clean.special_service_rate > 0.25,
            "unattacked special service works, got {}",
            clean.special_service_rate
        );
        assert!(
            attacked.special_service_rate < 0.05,
            "retainer should deny the special service, got {}",
            attacked.special_service_rate
        );
        assert!(attacked.special_service_rate < clean.special_service_rate / 3.0);
    }

    #[test]
    fn altruists_serve_free() {
        let cfg = ScripConfig::builder()
            .agents(40)
            .altruists(10)
            .rounds(3_000)
            .warmup(100)
            .build()
            .unwrap();
        let report = ScripSim::new(cfg, ScripAttack::None, 7).run_to_report();
        assert!(
            report.free_rate > 0.5,
            "altruists dominate, got {}",
            report.free_rate
        );
    }

    #[test]
    fn adaptive_altruist_crash_lowers_thresholds() {
        let base = ScripConfig::builder()
            .agents(60)
            .availability(0.5)
            .adaptive(true)
            .rounds(30_000)
            .warmup(1_000)
            .build()
            .unwrap();
        let no_alt = ScripSim::new(base.clone(), ScripAttack::None, 8).run_to_report();
        let mut many_alt_cfg = base;
        many_alt_cfg.altruists = 30;
        let many_alt = ScripSim::new(many_alt_cfg, ScripAttack::None, 8).run_to_report();
        assert!(
            many_alt.mean_threshold < no_alt.mean_threshold,
            "free service should erode thresholds: {} vs {}",
            many_alt.mean_threshold,
            no_alt.mean_threshold
        );
    }

    #[test]
    fn satiable_interface() {
        let mut sim = ScripSim::new(quick_cfg(), ScripAttack::None, 1);
        assert_eq!(sim.node_count(), 60);
        for t in 0..500 {
            netsim::round::RoundSim::round(&mut sim, t);
        }
        // Some agent should have served by now.
        let served: u64 = (0..60).map(|i| sim.service_provided(NodeId(i))).sum();
        assert!(served > 0);
    }

    #[test]
    fn zero_rate_fault_plan_is_report_invisible() {
        use lotus_core::faults::FaultPlan;
        let mut zeroed = quick_cfg();
        zeroed.faults = FaultPlan::parse("loss:0/dup:0/delay:0/crash:0:0.5").unwrap();
        let plain = ScripSim::new(quick_cfg(), ScripAttack::lotus_eater(0.2, 0.3), 21);
        let faulted = ScripSim::new(zeroed, ScripAttack::lotus_eater(0.2, 0.3), 21);
        let a = plain.run_to_report();
        let b = faulted.run_to_report();
        assert_eq!(a, b, "zero-rate plans must be byte-invisible");
        assert!(b.fault_counters.is_none());
    }

    #[test]
    fn money_is_conserved_under_faults() {
        use lotus_core::faults::FaultPlan;
        // No attack: the providing attacker's fault-exempt channel would
        // otherwise absorb every paid request and starve the fate draws.
        let mut cfg = quick_cfg();
        cfg.faults = FaultPlan::parse("loss:0.2/crash:0.02:0.3/partition:100:200:0.4").unwrap();
        let mut sim = ScripSim::new(cfg, ScripAttack::None, 22);
        for t in 0..2_000 {
            netsim::round::RoundSim::round(&mut sim, t);
            assert_eq!(sim.total_money(), 120, "faults must not mint or burn");
        }
        let report = sim.report();
        let fc = report.fault_counters.expect("plan was active");
        assert!(fc.crashes > 0, "crashes happened");
        assert!(
            report.fail_faulted_rate > 0.05,
            "lost deliveries fail requests"
        );
    }

    #[test]
    fn loss_degrades_service() {
        use lotus_core::faults::FaultPlan;
        let clean = ScripSim::new(quick_cfg(), ScripAttack::None, 23).run_to_report();
        let mut cfg = quick_cfg();
        cfg.faults = FaultPlan::parse("loss:0.4").unwrap();
        let lossy = ScripSim::new(cfg, ScripAttack::None, 23).run_to_report();
        assert!(
            lossy.service_rate < clean.service_rate - 0.1,
            "40% loss must hurt: {} vs {}",
            lossy.service_rate,
            clean.service_rate
        );
    }

    #[test]
    fn gini_properties() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12, "equality => 0");
        let unequal = gini(&[0, 0, 0, 100]);
        assert!(unequal > 0.7, "concentration => high gini, got {unequal}");
        let mild = gini(&[2, 3, 4, 5]);
        assert!(mild > 0.0 && mild < unequal);
    }
}
