//! Lotus-eater attacks on a scrip economy.
//!
//! In a scrip system the satiation state is *monetary*: a rational
//! threshold agent stops volunteering once its balance reaches its
//! threshold. The attacker therefore satiates a node by keeping its
//! balance topped up — "either by giving money away, or providing cheap
//! service" (§1). Two targeting strategies matter:
//!
//! * [`ScripAttack::LotusEater`] — satiate a *fraction* of the population.
//!   This is where the money-supply defense bites: satiating a fraction
//!   `φ` locks roughly `φ·n·k` scrip, and only `m·n` exists (experiment
//!   X4).
//! * [`ScripAttack::Retainer`] — satiate exactly the providers of a rare
//!   service, denying that service to everyone ("companies sign an
//!   exclusive contract or put particular lawyers on retainer to deny
//!   others access to them", §1; experiment X4's rare-resource variant).

/// An attack on the scrip economy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScripAttack {
    /// No attacker.
    None,
    /// Keep a random fraction of agents at their thresholds.
    LotusEater {
        /// Fraction of agents to satiate.
        target_fraction: f64,
        /// Fraction of the total money supply the attacker starts with
        /// (carved out of circulation, e.g. earned or bought beforehand).
        endowment_fraction: f64,
        /// Whether the attacker also volunteers for paid (non-special)
        /// requests to recycle scrip back into his war chest.
        attacker_provides: bool,
    },
    /// Keep every special-service provider at its threshold.
    Retainer {
        /// Fraction of the total money supply the attacker starts with.
        endowment_fraction: f64,
        /// Whether the attacker also volunteers for paid requests.
        attacker_provides: bool,
    },
}

impl ScripAttack {
    /// Convenience constructor for the fraction attack.
    pub fn lotus_eater(target_fraction: f64, endowment_fraction: f64) -> Self {
        ScripAttack::LotusEater {
            target_fraction: target_fraction.clamp(0.0, 1.0),
            endowment_fraction: endowment_fraction.clamp(0.0, 1.0),
            attacker_provides: true,
        }
    }

    /// Convenience constructor for the retainer attack.
    pub fn retainer(endowment_fraction: f64) -> Self {
        ScripAttack::Retainer {
            endowment_fraction: endowment_fraction.clamp(0.0, 1.0),
            attacker_provides: true,
        }
    }

    /// The attacker's initial endowment given a total supply.
    pub fn endowment(&self, total_supply: u64) -> u64 {
        let frac = match self {
            ScripAttack::None => 0.0,
            ScripAttack::LotusEater {
                endowment_fraction, ..
            }
            | ScripAttack::Retainer {
                endowment_fraction, ..
            } => *endowment_fraction,
        };
        (total_supply as f64 * frac).round() as u64
    }

    /// Whether the attacker volunteers for paid requests.
    pub fn provides(&self) -> bool {
        match self {
            ScripAttack::None => false,
            ScripAttack::LotusEater {
                attacker_provides, ..
            }
            | ScripAttack::Retainer {
                attacker_provides, ..
            } => *attacker_provides,
        }
    }

    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ScripAttack::None => "no attack",
            ScripAttack::LotusEater { .. } => "scrip lotus-eater",
            ScripAttack::Retainer { .. } => "retainer attack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endowment_arithmetic() {
        let a = ScripAttack::lotus_eater(0.5, 0.25);
        assert_eq!(a.endowment(400), 100);
        assert_eq!(ScripAttack::None.endowment(400), 0);
        assert_eq!(ScripAttack::retainer(1.0).endowment(400), 400);
    }

    #[test]
    fn constructors_clamp() {
        match ScripAttack::lotus_eater(1.5, -0.2) {
            ScripAttack::LotusEater {
                target_fraction,
                endowment_fraction,
                ..
            } => {
                assert_eq!(target_fraction, 1.0);
                assert_eq!(endowment_fraction, 0.0);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn provides_flags() {
        assert!(!ScripAttack::None.provides());
        assert!(ScripAttack::lotus_eater(0.1, 0.1).provides());
        assert!(ScripAttack::retainer(0.1).provides());
    }

    #[test]
    fn labels() {
        assert_eq!(ScripAttack::None.label(), "no attack");
        assert_eq!(
            ScripAttack::lotus_eater(0.1, 0.1).label(),
            "scrip lotus-eater"
        );
        assert_eq!(ScripAttack::retainer(0.1).label(), "retainer attack");
    }
}
