//! `scrip-economy` — a scrip-system simulator with lotus-eater attacks.
//!
//! Scrip systems pay providers in a system-issued currency that consumers
//! later spend, making reciprocity *indirect*. The lotus-eater paper (§1,
//! §4) identifies them both as a target — an agent playing a threshold
//! strategy stops providing service once its balance reaches its
//! threshold, so an attacker satiates it with money or cheap service —
//! and as a defense: the **fixed money supply** means satiating a few
//! agents is cheap but satiating a large fraction may require more scrip
//! than exists.
//!
//! The model follows Kash–Friedman–Halpern (EC 2007), including the
//! altruist-crash phenomenon the paper cites: with adaptive thresholds,
//! abundant free service erodes the value of money until the paid market
//! collapses.
//!
//! # Example: the money supply caps satiation
//!
//! ```
//! use scrip_economy::{ScripAttack, ScripConfig, ScripSim};
//!
//! let cfg = ScripConfig::builder()
//!     .agents(50)
//!     .money_per_agent(1)   // scarce money
//!     .threshold(6)         // high thresholds
//!     .rounds(3_000)
//!     .warmup(300)
//!     .build()?;
//! // Even an attacker holding the entire supply cannot keep 80% of the
//! // agents satiated: that would need 6 scrip each with only 1 per agent
//! // in existence.
//! let report = ScripSim::new(cfg, ScripAttack::lotus_eater(0.8, 1.0), 1)
//!     .run_to_report();
//! assert!(report.target_satiation.unwrap() < 0.5);
//! # Ok::<(), scrip_economy::config::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod config;
pub mod reputation;
pub mod sim;

pub use attack::ScripAttack;
pub use config::ScripConfig;
pub use reputation::{ReputationAttack, ReputationConfig, ReputationReport, ReputationSim};
pub use sim::{gini, AgentRole, ScripReport, ScripSim};
