//! Scrip-economy configuration.
//!
//! The model follows Kash–Friedman–Halpern, *Optimizing scrip systems:
//! efficiency, crashes, hoarders and altruists* (EC 2007) — the system the
//! lotus-eater paper points to for the "making satiation hard" defense:
//!
//! * `n` agents share a **fixed** money supply of `m·n` scrip;
//! * each round one agent requests a unit of service at price 1;
//! * an agent *volunteers* to provide iff it is available this round
//!   (probability `β`) and — if rational — its balance is below its
//!   **threshold** `k`: an agent at or above threshold is *satiated* and
//!   stops working;
//! * altruists volunteer whenever available and serve for free.
//!
//! Satiation here is monetary: the lotus-eater attacker keeps targets'
//! balances at their thresholds so they never volunteer. The defense
//! analysis rests on conservation: satiating a `φ` fraction locks
//! `φ·n·k` scrip, and the system only has `m·n`.

use lotus_core::faults::FaultPlan;
use lotus_core::population::{ArrivalProcess, ChurnProfile};
use lotus_core::schedule::AttackSchedule;

/// Configuration of a scrip-economy run.
///
/// Construct via [`ScripConfig::builder`]; defaults give a healthy
/// mid-size economy.
#[derive(Debug, Clone, PartialEq)]
pub struct ScripConfig {
    /// Number of agents (excluding the attacker, who is external).
    pub agents: u32,
    /// Average scrip per agent; total supply is `agents * money_per_agent`.
    pub money_per_agent: u32,
    /// Rational agents' initial threshold `k`: volunteer iff balance < k.
    pub initial_threshold: u32,
    /// Probability an agent is available to provide in a given round (β).
    pub availability: f64,
    /// Number of altruists (always volunteer when available, serve free).
    pub altruists: u32,
    /// Whether rational agents adapt their thresholds (the EC'07 crash
    /// dynamics); see `ScripSim` for the adaptation rule.
    pub adaptive: bool,
    /// Rounds between threshold adaptations.
    pub adapt_interval: u32,
    /// Upper bound on adapted thresholds.
    pub max_threshold: u32,
    /// The first `special_providers` rational agents are the only ones who
    /// can serve *special* requests (the "rare resource" of the retainer
    /// attack).
    pub special_providers: u32,
    /// Probability a request is for the special service.
    pub special_request_prob: f64,
    /// Measured rounds.
    pub rounds: u64,
    /// Warm-up rounds excluded from measurement.
    pub warmup: u64,
    /// When the attack is on (default: always, the pre-schedule
    /// behaviour). While off, the attacker neither tops targets up nor
    /// bids for paid requests.
    pub schedule: AttackSchedule,
    /// Population churn: absent agents cannot request, volunteer or be
    /// topped up (default: none; a uniform
    /// [`ChurnSpec`](lotus_core::population::ChurnSpec) converts to the
    /// degenerate one-class profile).
    pub churn: ChurnProfile,
    /// Flash-crowd arrival process: held-back agents enter with their
    /// initial balance, having never requested or served (default:
    /// none).
    pub arrival: ArrivalProcess,
    /// Fault plan (default: none). Crashed agents cannot request,
    /// volunteer or be topped up, and lose their adaptive bookkeeping —
    /// but *not* their balance: scrip is a bank ledger, so crashes
    /// conserve the money supply. Message faults void service
    /// deliveries; the partition stops requesters hiring across cells.
    pub faults: FaultPlan,
}

impl Default for ScripConfig {
    fn default() -> Self {
        ScripConfig {
            agents: 200,
            money_per_agent: 2,
            initial_threshold: 4,
            availability: 0.5,
            altruists: 0,
            adaptive: false,
            adapt_interval: 200,
            max_threshold: 10,
            special_providers: 0,
            special_request_prob: 0.0,
            rounds: 20_000,
            warmup: 2_000,
            schedule: AttackSchedule::always(),
            churn: ChurnProfile::none(),
            arrival: ArrivalProcess::None,
            faults: FaultPlan::none(),
        }
    }
}

/// Errors from [`ScripConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Need at least two agents.
    TooFewAgents(u32),
    /// A probability parameter was outside `[0, 1]`.
    BadProbability(&'static str, f64),
    /// Threshold constraints violated.
    BadThreshold(String),
    /// More altruists or special providers than agents.
    BadCounts(String),
    /// No measured rounds.
    ZeroRounds,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooFewAgents(n) => write!(f, "need at least 2 agents, got {n}"),
            ConfigError::BadProbability(name, v) => {
                write!(f, "probability {name} = {v} outside [0, 1]")
            }
            ConfigError::BadThreshold(why) => write!(f, "bad threshold: {why}"),
            ConfigError::BadCounts(why) => write!(f, "bad counts: {why}"),
            ConfigError::ZeroRounds => write!(f, "need at least one measured round"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ScripConfig {
    /// Start building from the defaults.
    pub fn builder() -> ScripConfigBuilder {
        ScripConfigBuilder {
            cfg: ScripConfig::default(),
        }
    }

    /// Total scrip in circulation among agents (the attacker's endowment
    /// is carved out of this at simulation start).
    pub fn total_supply(&self) -> u64 {
        u64::from(self.agents) * u64::from(self.money_per_agent)
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.agents < 2 {
            return Err(ConfigError::TooFewAgents(self.agents));
        }
        if !(0.0..=1.0).contains(&self.availability) {
            return Err(ConfigError::BadProbability(
                "availability",
                self.availability,
            ));
        }
        if !(0.0..=1.0).contains(&self.special_request_prob) {
            return Err(ConfigError::BadProbability(
                "special_request_prob",
                self.special_request_prob,
            ));
        }
        if self.initial_threshold == 0 {
            return Err(ConfigError::BadThreshold(
                "initial threshold must be positive (k = 0 means never volunteer)".into(),
            ));
        }
        if self.initial_threshold > self.max_threshold {
            return Err(ConfigError::BadThreshold(format!(
                "initial threshold {} exceeds max {}",
                self.initial_threshold, self.max_threshold
            )));
        }
        if self.altruists > self.agents {
            return Err(ConfigError::BadCounts(format!(
                "{} altruists among {} agents",
                self.altruists, self.agents
            )));
        }
        if self.special_providers + self.altruists > self.agents {
            return Err(ConfigError::BadCounts(format!(
                "{} special providers + {} altruists exceed {} agents",
                self.special_providers, self.altruists, self.agents
            )));
        }
        if self.special_request_prob > 0.0 && self.special_providers == 0 {
            return Err(ConfigError::BadCounts(
                "special requests configured without special providers".into(),
            ));
        }
        if self.rounds == 0 {
            return Err(ConfigError::ZeroRounds);
        }
        if self.adaptive && self.adapt_interval == 0 {
            return Err(ConfigError::BadThreshold(
                "adaptive economies need a positive adapt interval".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`ScripConfig`].
#[derive(Debug, Clone)]
pub struct ScripConfigBuilder {
    cfg: ScripConfig,
}

impl ScripConfigBuilder {
    /// Set the agent count.
    pub fn agents(mut self, n: u32) -> Self {
        self.cfg.agents = n;
        self
    }

    /// Set average scrip per agent.
    pub fn money_per_agent(mut self, m: u32) -> Self {
        self.cfg.money_per_agent = m;
        self
    }

    /// Set the rational threshold `k`.
    pub fn threshold(mut self, k: u32) -> Self {
        self.cfg.initial_threshold = k;
        self.cfg.max_threshold = self.cfg.max_threshold.max(k);
        self
    }

    /// Set the availability probability β.
    pub fn availability(mut self, beta: f64) -> Self {
        self.cfg.availability = beta;
        self
    }

    /// Set the altruist count.
    pub fn altruists(mut self, a: u32) -> Self {
        self.cfg.altruists = a;
        self
    }

    /// Enable adaptive thresholds.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.cfg.adaptive = on;
        self
    }

    /// Configure the rare special service: `providers` agents can serve
    /// it, and requests ask for it with probability `prob`.
    pub fn special_service(mut self, providers: u32, prob: f64) -> Self {
        self.cfg.special_providers = providers;
        self.cfg.special_request_prob = prob;
        self
    }

    /// Set measured rounds.
    pub fn rounds(mut self, r: u64) -> Self {
        self.cfg.rounds = r;
        self
    }

    /// Set warm-up rounds.
    pub fn warmup(mut self, w: u64) -> Self {
        self.cfg.warmup = w;
        self
    }

    /// Set the attack schedule (default: always on).
    pub fn schedule(mut self, schedule: AttackSchedule) -> Self {
        self.cfg.schedule = schedule;
        self
    }

    /// Set the churn profile (default: none; a uniform
    /// [`ChurnSpec`](lotus_core::population::ChurnSpec) converts to the
    /// degenerate one-class profile).
    pub fn churn(mut self, churn: impl Into<ChurnProfile>) -> Self {
        self.cfg.churn = churn.into();
        self
    }

    /// Set the flash-crowd arrival process (default: none).
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.cfg.arrival = arrival;
        self
    }

    /// Set the fault plan (default: none).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    ///
    /// Propagates [`ScripConfig::validate`] failures.
    pub fn build(self) -> Result<ScripConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let cfg = ScripConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.total_supply(), 400);
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = ScripConfig::builder()
            .agents(50)
            .money_per_agent(3)
            .threshold(6)
            .availability(0.8)
            .altruists(5)
            .adaptive(true)
            .special_service(2, 0.1)
            .rounds(100)
            .warmup(10)
            .build()
            .unwrap();
        assert_eq!(cfg.agents, 50);
        assert_eq!(cfg.total_supply(), 150);
        assert_eq!(cfg.initial_threshold, 6);
        assert_eq!(cfg.special_providers, 2);
    }

    #[test]
    fn validation_failures() {
        assert!(matches!(
            ScripConfig::builder().agents(1).build(),
            Err(ConfigError::TooFewAgents(1))
        ));
        assert!(matches!(
            ScripConfig::builder().availability(1.5).build(),
            Err(ConfigError::BadProbability("availability", _))
        ));
        assert!(matches!(
            ScripConfig::builder().threshold(0).build(),
            Err(ConfigError::BadThreshold(_))
        ));
        assert!(matches!(
            ScripConfig::builder().agents(5).altruists(6).build(),
            Err(ConfigError::BadCounts(_))
        ));
        assert!(matches!(
            ScripConfig::builder().rounds(0).build(),
            Err(ConfigError::ZeroRounds)
        ));
        let cfg = ScripConfig {
            special_request_prob: 0.1,
            ..ScripConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::BadCounts(_))));
    }

    #[test]
    fn faults_default_off() {
        let cfg = ScripConfig::default();
        assert!(!cfg.faults.is_active());
        let faulty = ScripConfig::builder()
            .faults(FaultPlan::parse("loss:0.1").unwrap())
            .build()
            .unwrap();
        assert!(faulty.faults.is_active());
    }

    #[test]
    fn threshold_bumps_max() {
        let cfg = ScripConfig::builder().threshold(20).build().unwrap();
        assert!(cfg.max_threshold >= 20);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ConfigError::TooFewAgents(0),
            ConfigError::BadProbability("x", 2.0),
            ConfigError::BadThreshold("y".into()),
            ConfigError::BadCounts("z".into()),
            ConfigError::ZeroRounds,
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
