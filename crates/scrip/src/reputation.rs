//! A reputation economy — §1's other indirect-reciprocity system.
//!
//! "In indirect reciprocity systems, such as reputation systems and scrip
//! systems, peers need to perform service for others often enough to
//! maintain a good reputation or supply of money. If an attacker can
//! ensure that a peer maintains a good reputation … despite any requests
//! the peer makes, then that peer will no longer provide service."
//!
//! The model: each agent holds a non-negative reputation score that
//! **decays** multiplicatively every round (old behaviour matters less).
//! Serving a request earns one point; an agent *volunteers* only while its
//! score is below its threshold (reputation-satiated agents rest); a
//! requester whose score has fallen below the access bar is denied
//! service. The attacker satiates targets by injecting fake praise
//! (sybil feedback) every round.
//!
//! The contrast with scrip is the point of experiment X14: scrip is
//! **conserved**, so satiating a fraction `φ` needs `φ·n·k` of an `m·n`
//! supply — a hard wall. Reputation is *minted* by feedback, so the
//! attacker faces only a **linear maintenance cost** (`≈ k·(1-δ)` fake
//! points per target per round against decay `δ`) and no wall at all.
//! Faster decay raises his bill but hurts honest agents too.

use lotus_core::satiation::{Feedable, Satiable};
use netsim::rng::DetRng;
use netsim::round::RoundSim;
use netsim::{NodeId, Round};

/// Configuration of a reputation-economy run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReputationConfig {
    /// Number of agents.
    pub agents: u32,
    /// Multiplicative per-round reputation decay (0 < δ ≤ 1).
    pub decay: f64,
    /// Volunteer only while reputation < threshold.
    pub threshold: f64,
    /// Requests from agents below this score are denied.
    pub access_bar: f64,
    /// Initial reputation per agent.
    pub initial: f64,
    /// Probability an agent is available to serve in a round.
    pub availability: f64,
    /// Requests served per round (the workload; reputation minting scales
    /// with it, so it balances the decay drain).
    pub requests_per_round: u32,
    /// Measured rounds.
    pub rounds: u64,
    /// Warm-up rounds excluded from measurement.
    pub warmup: u64,
}

impl Default for ReputationConfig {
    fn default() -> Self {
        ReputationConfig {
            agents: 100,
            decay: 0.95,
            threshold: 4.0,
            access_bar: 0.2,
            initial: 1.0,
            availability: 0.5,
            requests_per_round: 10,
            rounds: 20_000,
            warmup: 2_000,
        }
    }
}

/// Errors from [`ReputationConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReputationConfigError {
    /// Fewer than two agents.
    TooFewAgents(u32),
    /// Decay outside `(0, 1]`.
    BadDecay(f64),
    /// Threshold must be positive.
    BadThreshold(f64),
    /// Availability outside `[0, 1]`.
    BadAvailability(f64),
    /// No measured rounds.
    ZeroRounds,
}

impl std::fmt::Display for ReputationConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReputationConfigError::TooFewAgents(n) => {
                write!(f, "need at least 2 agents, got {n}")
            }
            ReputationConfigError::BadDecay(d) => write!(f, "decay {d} outside (0, 1]"),
            ReputationConfigError::BadThreshold(t) => {
                write!(f, "threshold {t} must be positive")
            }
            ReputationConfigError::BadAvailability(a) => {
                write!(f, "availability {a} outside [0, 1]")
            }
            ReputationConfigError::ZeroRounds => write!(f, "need at least one measured round"),
        }
    }
}

impl std::error::Error for ReputationConfigError {}

impl ReputationConfig {
    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ReputationConfigError> {
        if self.agents < 2 {
            return Err(ReputationConfigError::TooFewAgents(self.agents));
        }
        if !(self.decay > 0.0 && self.decay <= 1.0) {
            return Err(ReputationConfigError::BadDecay(self.decay));
        }
        if self.threshold <= 0.0 {
            return Err(ReputationConfigError::BadThreshold(self.threshold));
        }
        if !(0.0..=1.0).contains(&self.availability) {
            return Err(ReputationConfigError::BadAvailability(self.availability));
        }
        if self.rounds == 0 || self.requests_per_round == 0 {
            return Err(ReputationConfigError::ZeroRounds);
        }
        Ok(())
    }
}

/// The reputation-inflation attack: keep a fraction of agents at their
/// thresholds with fake praise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReputationAttack {
    /// No attacker.
    None,
    /// Top a random fraction of agents up to threshold every round.
    Inflate {
        /// Fraction of agents targeted.
        target_fraction: f64,
    },
}

/// Final report of a reputation-economy run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReputationReport {
    /// Rounds executed.
    pub rounds: Round,
    /// Fraction of measured requests served.
    pub service_rate: f64,
    /// Fraction denied because the requester was below the access bar.
    pub denied_rate: f64,
    /// Fraction failed for lack of volunteers.
    pub no_volunteer_rate: f64,
    /// Fraction of target-round samples where the target was satiated
    /// (`None` without an attack).
    pub target_satiation: Option<f64>,
    /// Mean fake reputation the attacker injected per round — his
    /// maintenance bill (zero without an attack).
    pub attacker_cost_per_round: f64,
}

/// The reputation-economy simulator.
///
/// ```
/// use scrip_economy::reputation::{
///     ReputationAttack, ReputationConfig, ReputationSim,
/// };
///
/// let cfg = ReputationConfig {
///     agents: 50,
///     rounds: 3_000,
///     warmup: 300,
///     ..ReputationConfig::default()
/// };
/// let report = ReputationSim::new(cfg, ReputationAttack::None, 7).run_to_report();
/// assert!(report.service_rate > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct ReputationSim {
    cfg: ReputationConfig,
    attack: ReputationAttack,
    reputation: Vec<f64>,
    targeted: Vec<bool>,
    served: Vec<u64>,
    rng: DetRng,
    round: Round,
    requests: u64,
    served_count: u64,
    denied: u64,
    no_volunteer: u64,
    target_satiated: u64,
    target_samples: u64,
    injected: f64,
    /// Nodes fed by the Observation 3.1 harness: re-topped after decay
    /// each round ("sufficiently rapidly").
    fed: std::collections::BTreeSet<usize>,
    /// Reused per-request volunteer list (capacity `agents`), so the
    /// round loop never allocates in steady state.
    volunteer_scratch: Vec<usize>,
}

impl ReputationSim {
    /// Build a simulator, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: ReputationConfig, attack: ReputationAttack, seed: u64) -> Self {
        cfg.validate().expect("invalid ReputationConfig");
        let rng = DetRng::seed_from(seed).fork("reputation");
        let n = cfg.agents as usize;
        let mut targeted = vec![false; n];
        if let ReputationAttack::Inflate { target_fraction } = attack {
            let k = ((n as f64) * target_fraction.clamp(0.0, 1.0)).round() as usize;
            for i in rng.fork("targets").sample_indices(n, k.min(n)) {
                targeted[i] = true;
            }
        }
        ReputationSim {
            reputation: vec![cfg.initial; n],
            targeted,
            served: vec![0; n],
            rng,
            round: 0,
            requests: 0,
            served_count: 0,
            denied: 0,
            no_volunteer: 0,
            target_satiated: 0,
            target_samples: 0,
            injected: 0.0,
            fed: std::collections::BTreeSet::new(),
            volunteer_scratch: Vec::with_capacity(n),
            cfg,
            attack,
        }
    }

    /// Current reputation of `agent`.
    pub fn reputation(&self, agent: NodeId) -> f64 {
        self.reputation[agent.index()]
    }

    /// Whether `agent` is an attack target.
    pub fn is_targeted(&self, agent: NodeId) -> bool {
        self.targeted[agent.index()]
    }

    fn measured(&self) -> bool {
        self.round >= self.cfg.warmup
    }

    /// Run the configured horizon and produce the report.
    pub fn run_to_report(mut self) -> ReputationReport {
        let total = self.cfg.warmup + self.cfg.rounds;
        while self.round < total {
            let t = self.round;
            self.round(t);
        }
        self.report()
    }

    /// Snapshot the report so far.
    pub fn report(&self) -> ReputationReport {
        let req = self.requests.max(1) as f64;
        let measured_rounds = self.round.saturating_sub(self.cfg.warmup).max(1) as f64;
        ReputationReport {
            rounds: self.round,
            service_rate: self.served_count as f64 / req,
            denied_rate: self.denied as f64 / req,
            no_volunteer_rate: self.no_volunteer as f64 / req,
            target_satiation: if self.target_samples == 0 {
                None
            } else {
                Some(self.target_satiated as f64 / self.target_samples as f64)
            },
            attacker_cost_per_round: self.injected / measured_rounds,
        }
    }
}

impl lotus_core::scenario::Scenario for ReputationSim {
    type Config = ReputationConfig;
    type Attack = ReputationAttack;
    type Report = ReputationReport;
    const NAME: &'static str = "reputation";

    fn build(cfg: ReputationConfig, attack: ReputationAttack, seed: u64) -> Self {
        ReputationSim::new(cfg, attack, seed)
    }

    fn step(&mut self) -> lotus_core::scenario::StepOutcome {
        let total = self.cfg.warmup + self.cfg.rounds;
        if self.round >= total {
            return lotus_core::scenario::StepOutcome::Done;
        }
        let t = self.round;
        RoundSim::round(self, t);
        if self.round >= total {
            lotus_core::scenario::StepOutcome::Done
        } else {
            lotus_core::scenario::StepOutcome::Continue
        }
    }

    fn report(&self) -> ReputationReport {
        ReputationSim::report(self)
    }
}

impl lotus_core::scenario::Summarize for ReputationReport {
    /// Common vocabulary for the reputation economy, mirroring the scrip
    /// summary so the two satiation currencies compare directly.
    fn summarize(&self) -> lotus_core::scenario::ScenarioReport {
        lotus_core::scenario::ScenarioReport::new(
            "reputation",
            self.rounds,
            self.service_rate,
            self.target_satiation.unwrap_or(0.0),
            self.service_rate > 0.5,
        )
        .with_metric("service_rate", self.service_rate)
        .with_metric("denied_rate", self.denied_rate)
        .with_metric("no_volunteer_rate", self.no_volunteer_rate)
        .with_metric("attacker_cost_per_round", self.attacker_cost_per_round)
        // 0.0 when the attack has no targets, so fraction sweeps that
        // include the no-attack point stay total.
        .with_metric("target_satiation", self.target_satiation.unwrap_or(0.0))
    }
}

impl RoundSim for ReputationSim {
    // lint: hot-loop
    fn round(&mut self, t: Round) {
        debug_assert_eq!(t, self.round, "rounds must be sequential");
        let n = self.reputation.len();
        let measured = self.measured();

        // Decay: old reputation fades.
        for r in self.reputation.iter_mut() {
            *r *= self.cfg.decay;
        }

        // Attack: fake praise tops targets up to their thresholds.
        if matches!(self.attack, ReputationAttack::Inflate { .. }) {
            for i in 0..n {
                if self.targeted[i] && self.reputation[i] < self.cfg.threshold {
                    let need = self.cfg.threshold - self.reputation[i];
                    self.reputation[i] = self.cfg.threshold;
                    if measured {
                        self.injected += need;
                    }
                }
            }
        }
        // Observation 3.1 harness: fed nodes are re-topped after decay.
        if !self.fed.is_empty() {
            let fed = std::mem::take(&mut self.fed);
            for i in fed {
                if self.reputation[i] < self.cfg.threshold {
                    self.reputation[i] = self.cfg.threshold;
                }
            }
        }

        // The round's requests, served one at a time (reputation earned by
        // an early request can satiate a volunteer out of a later one).
        let mut rng = self.rng.fork_idx("round", t);
        for _ in 0..self.cfg.requests_per_round {
            let requester = rng.index(n);
            if measured {
                self.requests += 1;
            }
            if self.reputation[requester] < self.cfg.access_bar {
                if measured {
                    self.denied += 1;
                }
                continue;
            }
            // Same draw order as the old collect-based filter, into the
            // persistent scratch buffer (capacity `n`, so no growth).
            self.volunteer_scratch.clear();
            for i in 0..n {
                if i != requester
                    && rng.chance(self.cfg.availability)
                    && self.reputation[i] < self.cfg.threshold
                {
                    self.volunteer_scratch.push(i);
                }
            }
            if let Some(&p) = rng.choose(&self.volunteer_scratch) {
                self.reputation[p] += 1.0; // service earns reputation
                self.served[p] += 1;
                if measured {
                    self.served_count += 1;
                }
            } else if measured {
                self.no_volunteer += 1;
            }
        }

        // Satiation sampling.
        if measured {
            for i in 0..n {
                if self.targeted[i] {
                    self.target_samples += 1;
                    if self.reputation[i] >= self.cfg.threshold {
                        self.target_satiated += 1;
                    }
                }
            }
        }
        self.round = t + 1;
    }

    fn rounds_run(&self) -> Round {
        self.round
    }
}

impl Satiable for ReputationSim {
    fn node_count(&self) -> u32 {
        self.reputation.len() as u32
    }

    /// Reputation-satiated: banked enough reputation to rest.
    fn is_satiated(&self, node: NodeId) -> bool {
        self.reputation[node.index()] >= self.cfg.threshold
    }

    fn service_provided(&self, node: NodeId) -> u64 {
        self.served[node.index()]
    }
}

impl Feedable for ReputationSim {
    /// Inject enough fake praise to satiate the node now — and keep it
    /// satiated through the coming round's decay ("sufficiently rapidly").
    fn feed_fully(&mut self, node: NodeId) {
        let r = &mut self.reputation[node.index()];
        if *r < self.cfg.threshold {
            *r = self.cfg.threshold;
        }
        self.fed.insert(node.index());
    }

    fn step(&mut self) {
        let t = self.round;
        self.round(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_core::satiation::observation_3_1;

    fn quick_cfg() -> ReputationConfig {
        ReputationConfig {
            agents: 60,
            rounds: 2_000,
            warmup: 200,
            ..ReputationConfig::default()
        }
    }

    #[test]
    fn healthy_reputation_economy_serves() {
        let report = ReputationSim::new(quick_cfg(), ReputationAttack::None, 1).run_to_report();
        assert!(report.service_rate > 0.9, "service {}", report.service_rate);
        assert_eq!(report.attacker_cost_per_round, 0.0);
        assert!(report.target_satiation.is_none());
    }

    #[test]
    fn validation_catches_bad_parameters() {
        for (mutate, _name) in [
            (
                Box::new(|c: &mut ReputationConfig| c.agents = 1) as Box<dyn Fn(&mut _)>,
                "agents",
            ),
            (Box::new(|c: &mut ReputationConfig| c.decay = 0.0), "decay"),
            (
                Box::new(|c: &mut ReputationConfig| c.decay = 1.5),
                "decay hi",
            ),
            (
                Box::new(|c: &mut ReputationConfig| c.threshold = 0.0),
                "threshold",
            ),
            (
                Box::new(|c: &mut ReputationConfig| c.availability = -0.1),
                "avail",
            ),
            (Box::new(|c: &mut ReputationConfig| c.rounds = 0), "rounds"),
        ] {
            let mut cfg = quick_cfg();
            mutate(&mut cfg);
            assert!(cfg.validate().is_err());
            assert!(!format!("{}", cfg.validate().unwrap_err()).is_empty());
        }
    }

    #[test]
    fn inflation_attack_satiates_targets_at_linear_cost() {
        let attack = ReputationAttack::Inflate {
            target_fraction: 0.3,
        };
        let report = ReputationSim::new(quick_cfg(), attack, 2).run_to_report();
        let sat = report.target_satiation.expect("targets exist");
        assert!(sat > 0.95, "inflation keeps targets satiated: {sat}");
        // Maintenance ≈ k·(1-δ) per target per round: 18 targets × 4 × 0.05
        // (slightly less in practice: targets also earn a little before
        // satiating fully at warm-up's edge).
        let expected = 18.0 * 4.0 * 0.05;
        assert!(
            report.attacker_cost_per_round > expected * 0.5
                && report.attacker_cost_per_round < expected * 1.5,
            "cost {} vs expected ~{expected}",
            report.attacker_cost_per_round
        );
    }

    #[test]
    fn no_hard_cap_unlike_scrip() {
        // Even targeting 90% of agents, reputation inflation succeeds —
        // there is no conserved supply to run out of. (Contrast with the
        // scrip test `money_supply_bounds_satiable_fraction`, where the
        // same coverage is impossible.) The attacker's bill merely grows
        // linearly with the target count.
        let at = |frac| {
            ReputationSim::new(
                quick_cfg(),
                ReputationAttack::Inflate {
                    target_fraction: frac,
                },
                3,
            )
            .run_to_report()
        };
        let small = at(0.3);
        let large = at(0.9);
        assert!(
            large.target_satiation.unwrap() > 0.95,
            "no supply wall stops the attacker: {:?}",
            large.target_satiation
        );
        let ratio = large.attacker_cost_per_round / small.attacker_cost_per_round;
        assert!(
            (2.0..4.5).contains(&ratio),
            "cost grows ~linearly in targets (3x targets), got ratio {ratio}"
        );
    }

    #[test]
    fn faster_decay_raises_the_attackers_bill() {
        let attack = ReputationAttack::Inflate {
            target_fraction: 0.3,
        };
        let slow = ReputationSim::new(
            ReputationConfig {
                decay: 0.99,
                ..quick_cfg()
            },
            attack,
            4,
        )
        .run_to_report();
        let fast = ReputationSim::new(
            ReputationConfig {
                decay: 0.80,
                ..quick_cfg()
            },
            attack,
            4,
        )
        .run_to_report();
        assert!(
            fast.attacker_cost_per_round > slow.attacker_cost_per_round * 2.0,
            "decay is the defense knob: {} vs {}",
            fast.attacker_cost_per_round,
            slow.attacker_cost_per_round
        );
    }

    #[test]
    fn observation_3_1_holds_here_too() {
        let mut sim = ReputationSim::new(quick_cfg(), ReputationAttack::None, 5);
        let report = observation_3_1(&mut sim, NodeId(7), 200);
        assert!(
            report.holds,
            "a reputation-satiated agent never volunteers: {report:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let attack = ReputationAttack::Inflate {
            target_fraction: 0.2,
        };
        let a = ReputationSim::new(quick_cfg(), attack, 9).run_to_report();
        let b = ReputationSim::new(quick_cfg(), attack, 9).run_to_report();
        assert_eq!(a, b);
    }

    #[test]
    fn reputation_never_negative() {
        let mut sim = ReputationSim::new(quick_cfg(), ReputationAttack::None, 6);
        for t in 0..2_000 {
            sim.round(t);
            for i in 0..60 {
                assert!(sim.reputation(NodeId(i)) >= 0.0);
            }
        }
    }
}
