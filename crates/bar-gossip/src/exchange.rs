//! The two gossip sub-protocols: balanced exchange and optimistic push.
//!
//! These are pure functions from a pair of update windows to a transfer
//! plan; the simulator applies the plan, meters bandwidth and runs the
//! excess-service check. Keeping them pure makes the exchange arithmetic
//! directly testable — including the properties the attack relies on:
//!
//! * a **balanced exchange** transfers `min(needs)` in each direction, so
//!   a satiated partner (needs 0) yields a useless exchange;
//! * an **optimistic push** moves at most `push_size` recent updates to
//!   the responder and an equal number of items (old updates the initiator
//!   needs, topped up with junk) back, so a rational node with no missing
//!   old updates never initiates one.

use crate::update::{UpdateId, WindowSet};
use netsim::Round;

/// Transfer plan of a balanced exchange.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BalancedOutcome {
    /// Updates the initiator receives.
    pub to_initiator: Vec<UpdateId>,
    /// Updates the responder receives.
    pub to_responder: Vec<UpdateId>,
}

impl BalancedOutcome {
    /// `true` if nothing moves.
    pub fn is_empty(&self) -> bool {
        self.to_initiator.is_empty() && self.to_responder.is_empty()
    }
}

/// Compute a balanced exchange between `initiator` and `responder` at
/// round `now`.
///
/// Both sides hand over as many live updates as possible one-for-one
/// (oldest — closest to expiry — first). With `unbalanced` (the Figure 3
/// defense) a node receiving at least one update is willing to give one
/// extra, so the needier side receives `min + 1` where available.
/// `rate_limit` caps each direction (the X9 defense).
pub fn balanced_exchange(
    initiator: &WindowSet,
    responder: &WindowSet,
    now: Round,
    unbalanced: bool,
    rate_limit: Option<u32>,
) -> BalancedOutcome {
    let mut out = BalancedOutcome::default();
    balanced_exchange_into(initiator, responder, now, unbalanced, rate_limit, &mut out);
    out
}

/// [`balanced_exchange`] into a caller-owned outcome (buffers cleared
/// first), so per-round hot loops can reuse the allocations.
pub fn balanced_exchange_into(
    initiator: &WindowSet,
    responder: &WindowSet,
    now: Round,
    unbalanced: bool,
    rate_limit: Option<u32>,
    out: &mut BalancedOutcome,
) {
    let cap = rate_limit.map_or(usize::MAX, |c| c as usize);
    // m: what the initiator could receive; n: what the responder could.
    let m = initiator.missing_from(responder);
    let n = responder.missing_from(initiator);
    let k = m.min(n);
    let (mut recv_i, mut recv_r) = (k, k);
    if unbalanced && k >= 1 {
        // The side that needs more receives one extra: its partner is
        // willing to give recv+1 since it receives at least one.
        if m > n {
            recv_i = (k + 1).min(m);
        } else if n > m {
            recv_r = (k + 1).min(n);
        }
    }
    recv_i = recv_i.min(cap);
    recv_r = recv_r.min(cap);
    initiator.wanted_from_into(responder, now, recv_i, 0, u32::MAX, &mut out.to_initiator);
    responder.wanted_from_into(initiator, now, recv_r, 0, u32::MAX, &mut out.to_responder);
}

/// Transfer plan of an optimistic push.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PushOutcome {
    /// Old updates the initiator receives (what it initiated the push
    /// for).
    pub useful_to_initiator: Vec<UpdateId>,
    /// Recent updates the responder takes from the initiator's offer.
    pub to_responder: Vec<UpdateId>,
    /// Junk items the responder pays when it lacks enough old updates.
    pub junk_to_initiator: u32,
}

impl PushOutcome {
    /// `true` if nothing moves.
    pub fn is_empty(&self) -> bool {
        self.to_responder.is_empty()
    }
}

/// Compute an optimistic push initiated by `initiator` toward `responder`.
///
/// The initiator offers its *recent* updates (age ≤ `recent_age`) and asks
/// for *old* ones it is missing (age ≥ `old_age`). The responder takes up
/// to `push_size` of the offered recents it lacks, paying one item per
/// update taken: old updates the initiator needs while it has them, junk
/// after that. If the responder wants nothing, nothing happens. The push
/// is *optimistic* because the initiator may be paid entirely in junk.
#[allow(clippy::too_many_arguments)]
pub fn optimistic_push(
    initiator: &WindowSet,
    responder: &WindowSet,
    now: Round,
    push_size: u32,
    old_age: u32,
    recent_age: u32,
    rate_limit: Option<u32>,
) -> PushOutcome {
    let mut out = PushOutcome::default();
    optimistic_push_into(
        initiator, responder, now, push_size, old_age, recent_age, rate_limit, &mut out,
    );
    out
}

/// [`optimistic_push`] into a caller-owned outcome (buffers cleared
/// first), so per-round hot loops can reuse the allocations.
#[allow(clippy::too_many_arguments)]
pub fn optimistic_push_into(
    initiator: &WindowSet,
    responder: &WindowSet,
    now: Round,
    push_size: u32,
    old_age: u32,
    recent_age: u32,
    rate_limit: Option<u32>,
    out: &mut PushOutcome,
) {
    let cap = rate_limit.map_or(usize::MAX, |c| c as usize);
    let take = (push_size as usize).min(cap);
    // Recents the responder lacks, from the initiator's offer.
    responder.wanted_from_into(initiator, now, take, 0, recent_age, &mut out.to_responder);
    if out.to_responder.is_empty() {
        out.useful_to_initiator.clear();
        out.junk_to_initiator = 0;
        return;
    }
    // The responder pays one item per update taken: old updates first.
    let owed = out.to_responder.len();
    initiator.wanted_from_into(
        responder,
        now,
        owed.min(cap),
        old_age,
        u32::MAX,
        &mut out.useful_to_initiator,
    );
    out.junk_to_initiator = (owed - out.useful_to_initiator.len()) as u32;
}

/// Whether the initiator has any reason to start an optimistic push: it is
/// rational to initiate only when missing old (soon-expiring) updates.
pub fn wants_push(node: &WindowSet, reference_full: &WindowSet, now: Round, old_age: u32) -> bool {
    node.missing_in_age_band(reference_full, now, old_age, u32::MAX) > 0
}

/// The excess-service test used by the report-and-evict defense: a peer
/// that *gives* more useful updates than it *receives* plus `slack` (and
/// beyond what the sub-protocol could legitimately produce) is providing
/// excessive service.
///
/// Only two parties observe the transfer counts, which is why the paper
/// needs *obedient* receivers to file the report — a rational beneficiary
/// stays quiet.
pub fn is_excessive_service(given: usize, received: usize, slack: u32) -> bool {
    given > received + slack as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an aligned pair of windows at `now`, holding the given ids.
    fn pair(now: Round, a: &[(u64, u32)], b: &[(u64, u32)]) -> (WindowSet, WindowSet, Round) {
        let mut wa = WindowSet::new(16, 8);
        let mut wb = WindowSet::new(16, 8);
        for t in 0..=now {
            wa.advance(t);
            wb.advance(t);
        }
        for &(round, slot) in a {
            wa.insert(UpdateId { round, slot });
        }
        for &(round, slot) in b {
            wb.insert(UpdateId { round, slot });
        }
        (wa, wb, now)
    }

    #[test]
    fn balanced_exchange_is_one_for_one() {
        // Initiator lacks 3, responder lacks 1 => 1 each way.
        let (a, b, now) = pair(3, &[(0, 0)], &[(1, 0), (1, 1), (2, 0)]);
        let out = balanced_exchange(&a, &b, now, false, None);
        assert_eq!(out.to_initiator.len(), 1);
        assert_eq!(out.to_responder.len(), 1);
        assert_eq!(
            out.to_initiator[0],
            UpdateId { round: 1, slot: 0 },
            "oldest first"
        );
        assert_eq!(out.to_responder[0], UpdateId { round: 0, slot: 0 });
    }

    #[test]
    fn balanced_exchange_with_satiated_partner_is_useless() {
        // Responder holds a superset: it needs nothing, so nothing moves.
        let (a, b, now) = pair(2, &[(0, 0)], &[(0, 0), (1, 0), (1, 1)]);
        let out = balanced_exchange(&a, &b, now, false, None);
        assert!(
            out.is_empty(),
            "the satiation effect: no mutual need, no trade"
        );
    }

    #[test]
    fn unbalanced_exchange_gives_one_extra_to_needier_side() {
        let (a, b, now) = pair(3, &[(0, 0)], &[(1, 0), (1, 1), (2, 0)]);
        let out = balanced_exchange(&a, &b, now, true, None);
        assert_eq!(out.to_initiator.len(), 2, "initiator needed 3, gets min+1");
        assert_eq!(out.to_responder.len(), 1);
    }

    #[test]
    fn unbalanced_does_not_create_service_from_nothing() {
        // Responder needs nothing => receives 0 => unwilling to give even
        // one: unbalanced exchanges only help under *partial* satiation.
        let (a, b, now) = pair(2, &[(0, 0)], &[(0, 0), (1, 0)]);
        let out = balanced_exchange(&a, &b, now, true, None);
        assert!(out.is_empty());
    }

    #[test]
    fn unbalanced_symmetric_needs_stay_balanced() {
        let (a, b, now) = pair(2, &[(0, 0), (0, 1)], &[(1, 0), (1, 1)]);
        let out = balanced_exchange(&a, &b, now, true, None);
        assert_eq!(out.to_initiator.len(), 2);
        assert_eq!(out.to_responder.len(), 2);
    }

    #[test]
    fn rate_limit_caps_both_directions() {
        let (a, b, now) = pair(4, &[(0, 0), (0, 1), (0, 2)], &[(1, 0), (1, 1), (1, 2)]);
        let out = balanced_exchange(&a, &b, now, false, Some(2));
        assert_eq!(out.to_initiator.len(), 2);
        assert_eq!(out.to_responder.len(), 2);
    }

    #[test]
    fn push_moves_recents_for_olds() {
        // now = 7, old_age 4, recent_age 1.
        // Initiator has recents (7,0),(7,1) and misses old (0,0),(1,0)
        // which the responder has.
        let (a, b, now) = pair(7, &[(7, 0), (7, 1)], &[(0, 0), (1, 0)]);
        let out = optimistic_push(&a, &b, now, 2, 4, 1, None);
        assert_eq!(out.to_responder.len(), 2, "responder takes both recents");
        assert_eq!(
            out.useful_to_initiator,
            vec![
                UpdateId { round: 0, slot: 0 },
                UpdateId { round: 1, slot: 0 }
            ]
        );
        assert_eq!(out.junk_to_initiator, 0);
    }

    #[test]
    fn push_size_caps_transfer() {
        let (a, b, now) = pair(
            7,
            &[(7, 0), (7, 1), (7, 2), (6, 0)],
            &[(0, 0), (0, 1), (0, 2), (0, 3)],
        );
        let out = optimistic_push(&a, &b, now, 2, 4, 1, None);
        assert_eq!(out.to_responder.len(), 2);
        assert_eq!(out.useful_to_initiator.len(), 2, "pays one-for-one");
    }

    #[test]
    fn push_pays_junk_when_responder_lacks_olds() {
        let (a, b, now) = pair(7, &[(7, 0), (7, 1)], &[(0, 0)]);
        let out = optimistic_push(&a, &b, now, 2, 4, 1, None);
        assert_eq!(out.to_responder.len(), 2);
        assert_eq!(out.useful_to_initiator.len(), 1);
        assert_eq!(out.junk_to_initiator, 1, "short one old update => junk");
    }

    #[test]
    fn push_noop_when_responder_wants_nothing() {
        // Responder already has the initiator's recents.
        let (a, b, now) = pair(7, &[(7, 0)], &[(7, 0), (0, 0)]);
        let out = optimistic_push(&a, &b, now, 2, 4, 1, None);
        assert!(out.is_empty());
        assert_eq!(out.junk_to_initiator, 0);
    }

    #[test]
    fn push_only_offers_recent_updates() {
        // Initiator's only update is old; responder lacks it but it is not
        // offerable in a push.
        let (a, b, now) = pair(7, &[(0, 5)], &[(1, 0)]);
        let out = optimistic_push(&a, &b, now, 2, 4, 1, None);
        assert!(out.is_empty());
    }

    #[test]
    fn push_rate_limited() {
        let (a, b, now) = pair(7, &[(7, 0), (7, 1), (7, 2)], &[(0, 0), (0, 1), (0, 2)]);
        let out = optimistic_push(&a, &b, now, 3, 4, 1, Some(1));
        assert_eq!(out.to_responder.len(), 1);
        assert!(out.useful_to_initiator.len() <= 1);
    }

    #[test]
    fn wants_push_only_when_missing_old() {
        let (a, full, now) = pair(7, &[(7, 0)], &[(0, 0), (7, 0)]);
        assert!(wants_push(&a, &full, now, 4), "missing (0,0) which is old");
        let (b, full2, now2) = pair(7, &[(0, 0)], &[(0, 0), (7, 1)]);
        assert!(
            !wants_push(&b, &full2, now2, 4),
            "only missing a recent update: no push"
        );
    }

    #[test]
    fn excess_service_detector() {
        assert!(!is_excessive_service(3, 3, 1), "balanced is fine");
        assert!(
            !is_excessive_service(4, 3, 1),
            "one extra tolerated (unbalanced defense)"
        );
        assert!(is_excessive_service(5, 3, 1), "gift of 2 extra flagged");
        assert!(is_excessive_service(50, 0, 1), "attacker gift flagged");
        assert!(!is_excessive_service(0, 0, 1));
    }

    #[test]
    fn honest_exchanges_never_trigger_excess_detector() {
        // Property-style check over a few window shapes: the balanced
        // exchange (with and without the unbalanced defense) never gives
        // more than received + 1.
        type Holdings = [(u64, u32)];
        let shapes: &[(&Holdings, &Holdings)] = &[
            (&[(0, 0)], &[(1, 0), (1, 1), (2, 0)]),
            (&[], &[(1, 0), (2, 0)]),
            (&[(0, 0), (0, 1), (1, 2)], &[(2, 0)]),
            (&[(0, 0)], &[(0, 0)]),
        ];
        for &(ha, hb) in shapes {
            let (a, b, now) = pair(3, ha, hb);
            for unb in [false, true] {
                let out = balanced_exchange(&a, &b, now, unb, None);
                assert!(!is_excessive_service(
                    out.to_initiator.len(),
                    out.to_responder.len(),
                    1
                ));
                assert!(!is_excessive_service(
                    out.to_responder.len(),
                    out.to_initiator.len(),
                    1
                ));
            }
        }
    }
}

#[cfg(all(test, feature = "proptest-tests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_window(now: Round) -> impl Strategy<Value = WindowSet> {
        proptest::collection::vec((0..=now, 0u32..16), 0..40).prop_map(move |items| {
            let mut w = WindowSet::new(16, (now + 1) as u32);
            for t in 0..=now {
                w.advance(t);
            }
            for (round, slot) in items {
                w.insert(UpdateId { round, slot });
            }
            w
        })
    }

    proptest! {
        #[test]
        fn balanced_exchange_invariants(a in arb_window(5), b in arb_window(5),
                                        unbalanced in any::<bool>(),
                                        cap in proptest::option::of(1u32..5)) {
            let out = balanced_exchange(&a, &b, 5, unbalanced, cap);
            let (gi, gr) = (out.to_initiator.len(), out.to_responder.len());
            // Never exceeds one-for-one plus the defense's single extra.
            prop_assert!(gi <= gr + 1 && gr <= gi + 1);
            if !unbalanced {
                // Without the defense the cap is the only source of asymmetry.
                if cap.is_none() { prop_assert_eq!(gi, gr); }
            }
            if let Some(c) = cap {
                prop_assert!(gi <= c as usize && gr <= c as usize);
            }
            // Transfers are genuinely useful and available.
            for u in &out.to_initiator {
                prop_assert!(b.contains(*u) && !a.contains(*u));
            }
            for u in &out.to_responder {
                prop_assert!(a.contains(*u) && !b.contains(*u));
            }
        }

        #[test]
        fn push_invariants(a in arb_window(5), b in arb_window(5),
                           push_size in 1u32..6) {
            let out = optimistic_push(&a, &b, 5, push_size, 3, 1, None);
            prop_assert!(out.to_responder.len() <= push_size as usize);
            // Payment is exact: useful + junk == taken.
            prop_assert_eq!(
                out.useful_to_initiator.len() + out.junk_to_initiator as usize,
                out.to_responder.len()
            );
            for u in &out.to_responder {
                prop_assert!(a.contains(*u) && !b.contains(*u));
                // Only recents are offered.
                prop_assert!(5 - u.round <= 1);
            }
            for u in &out.useful_to_initiator {
                prop_assert!(b.contains(*u) && !a.contains(*u));
                // Only old updates are requested.
                prop_assert!(5 - u.round >= 3);
            }
        }
    }
}
