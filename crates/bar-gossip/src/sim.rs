//! The round-based BAR Gossip simulator with attack orchestration.
//!
//! Each round:
//!
//! 1. every window slides forward one round; updates released `lifetime`
//!    rounds ago expire, and their delivery is recorded per node class;
//! 2. the broadcaster releases a fresh batch, seeding each update to
//!    `copies_seeded` random live nodes;
//! 3. under the *ideal* attack, attacker nodes instantly forward their
//!    pooled broadcaster seeds to every satiated-set node (the
//!    out-of-protocol channel the paper postulates);
//! 4. every node initiates one balanced exchange with its
//!    schedule-assigned partner (honest responders serve at most
//!    `responder_cap` incoming exchanges per protocol per round — BAR
//!    Gossip bounds per-round exchanges to limit Byzantine damage);
//! 5. every node missing old updates initiates one optimistic push
//!    likewise; trade-attack nodes use both slots to shower satiated-set
//!    partners with everything *they individually hold* (and give isolated
//!    nodes nothing) — attacker nodes synchronise their holdings only when
//!    the schedule pairs two of them, which is why the trade attack needs
//!    far more nodes than the ideal one;
//! 6. excess-service reports are processed and evictions applied (when the
//!    report-and-evict defense is on).
//!
//! Delivery is measured at expiry: an update counts as delivered to a node
//! iff the node holds it when it leaves the window, i.e. it was received
//! within its lifetime — exactly the streaming-usability notion the paper
//! evaluates.
//!
//! # Plan/apply exchange rounds
//!
//! Phases 4 and 5 run as two sub-phases each (see [`netsim::plan`]):
//! a read-only **plan** walks the live shards in ascending order,
//! batch-selecting every initiator's scheduled partner and a snapshot
//! of pair viability into a flat [`ExchangePlan`]; a sequential
//! **apply** shuffles the batch with the same `fork_idx` stream the
//! legacy initiator-list shuffle drew from (a Fisher–Yates shuffle's
//! draws depend only on length, and the batch has one entry per
//! initiator) and then commits transfers, counters and rng-consuming
//! outcomes pair by pair. Because partner selection is a pure hash and
//! plan-time state is read-only, the plan fill is partitioned along
//! shard bounds across the [`WorkerPool`] — concatenation in chunk
//! order reproduces the ascending walk exactly, so every figure is
//! byte-identical for any `run_threads` value.
//!
//! # Hot-loop invariants
//!
//! The per-round phases are **allocation-free in steady state**: every
//! index list the round loop needs (`alive_scratch`, the exchange-plan
//! batch and its chunk tables, seeding picks, gift/return buffers) is a
//! scratch buffer owned by the sim struct, cleared and refilled in
//! place, and membership tracking (`reporters`, `fed`) uses
//! [`lotus_core::bitset::BitSet`]. The timing layer keeps the invariant:
//! the schedule stepper ([`lotus_core::schedule::ScheduleState`]) and the
//! churn tracker ([`lotus_core::population::Population`]) never allocate,
//! and metric observations for threshold triggers are computed from the
//! running delivery counters, not from a report. Scratch contents are
//! meaningless between phases — each user clears before filling — and
//! none of it affects reports: refactors here must keep reports
//! bit-identical per seed (the determinism, legacy-equivalence and
//! schedule-golden tests are the guardrail).

use crate::attack::{AttackKind, AttackPlan};
use crate::config::{BarGossipConfig, DigestExchangeConfig};
use crate::exchange::{
    balanced_exchange_into, is_excessive_service, optimistic_push_into, wants_push,
    BalancedOutcome, PushOutcome,
};
use crate::update::{UpdateId, WindowSet};
use lotus_core::bitset::BitSet;
use lotus_core::digest::{region_hash, BloomDigest};
use lotus_core::faults::{CutStats, Fate, FaultCounters, FaultState};
use lotus_core::pool::WorkerPool;
use lotus_core::population::Population;
use lotus_core::schedule::{self, MetricKey, ScheduleState};
use lotus_core::soa::ShardMap;
use netsim::bandwidth::{BandwidthMeter, MsgClass};
use netsim::partner::{PartnerSchedule, Protocol};
use netsim::plan::{ExchangePlan, PlannedPair, LINKED, VIABLE};
use netsim::rng::DetRng;
use netsim::round::RoundSim;
use netsim::sign::Authority;
use netsim::trace::{EventKind, TraceBuffer};
use netsim::{NodeId, Round};

/// Metric class of a node under the running attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Honest node outside the attacker's satiated set (the paper's
    /// figures report *these* nodes' delivery).
    Isolated,
    /// Honest node the attacker tries to satiate.
    Satiated,
    /// Attacker-controlled node.
    Attacker,
}

// Per-node state lives in struct-of-arrays layout on the simulator
// itself (`windows`, `class`, and the `target`/`obedient`/`evicted`/
// `cut` bitsets), keyed by node index — the flat layout the sharded
// `O(active)` engine iterates.

/// Per-class delivery fractions measured at expiry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassDelivery {
    /// Delivery to isolated honest nodes.
    pub isolated: f64,
    /// Delivery to satiated-set honest nodes.
    pub satiated: f64,
    /// Delivery over all honest nodes.
    pub overall: f64,
}

/// Node-class sizes of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts {
    /// Honest nodes outside the satiated set.
    pub isolated: u32,
    /// Honest nodes inside the satiated set.
    pub satiated: u32,
    /// Attacker nodes.
    pub attacker: u32,
}

/// Wire accounting for the two-leg digest exchange (the
/// `bar-gossip-digest` scenario). Bytes are *attempted-send* bytes —
/// what crossed the sender's interface, whether or not the fault layer
/// delivered it. An update payload is modeled as
/// [`UPDATE_WIRE_BYTES`] and a requested id as [`ID_WIRE_BYTES`];
/// digests cost their exact advertised size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DigestStats {
    /// Bytes spent on digest advertisements (leg 1): `bits/8` per bloom
    /// digest, or 8 bytes per live-round region hash in exact mode.
    pub bytes_digests: u64,
    /// Bytes spent requesting ids (bloom mode: 8 bytes per requested
    /// id) or reconciling divergent regions (exact mode: 8 bytes per
    /// divergent-region mask, each way).
    pub bytes_requests: u64,
    /// Bytes spent shipping requested updates (leg 2).
    pub bytes_updates: u64,
    /// Ids requested across all exchanges.
    pub requests: u64,
    /// Requested ids the sender did not actually hold — bloom false
    /// positives (zero in exact mode). The poisoner's deniability
    /// floor: a withheld id and a false positive look identical to the
    /// receiver.
    pub fp_requests: u64,
    /// Ids a poisoning attacker withheld after advertising them.
    pub withheld: u64,
}

impl DigestStats {
    /// Total attempted bytes on the wire across all three message
    /// classes.
    pub fn bytes_on_wire(&self) -> u64 {
        self.bytes_digests + self.bytes_requests + self.bytes_updates
    }

    /// Fraction of requested ids that were bloom false positives.
    pub fn fp_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.fp_requests as f64 / self.requests as f64
        }
    }
}

/// Final report of a BAR Gossip run.
#[derive(Debug, Clone, PartialEq)]
pub struct BarGossipReport {
    /// Rounds executed (warm-up + measured + drain).
    pub rounds: Round,
    /// Delivery fractions by class.
    pub delivery: ClassDelivery,
    /// Fraction of measured updates the attacker (union over its nodes)
    /// held at expiry — the paper notes an ideal attacker at 4 % holds only
    /// ≈ 39 %, showing partial satiation suffices.
    pub attacker_coverage: f64,
    /// Class sizes.
    pub counts: ClassCounts,
    /// Attacker nodes evicted by the report defense.
    pub evictions: u32,
    /// Junk fraction of all metered traffic.
    pub junk_fraction: f64,
    /// Mean units uploaded per attacker node (the bandwidth cost the paper
    /// notes the trade attack pays and the crash attack does not).
    pub mean_attacker_upload: f64,
    /// Mean units uploaded per honest node.
    pub mean_honest_upload: f64,
    /// Per-expired-measured-round isolated delivery series.
    pub isolated_series: Vec<(Round, f64)>,
    /// The usability threshold the run was configured with.
    pub usability_threshold: f64,
    /// Lowest whole-run delivery over honest nodes.
    pub min_node_delivery: f64,
    /// Fraction of honest nodes that experienced at least one measured
    /// round below the usability threshold (under rotation this tends to
    /// 1.0 — everyone suffers intermittently).
    pub nodes_ever_unusable: f64,
    /// Fraction of honest (node, measured round) samples below the
    /// usability threshold.
    pub unusable_node_rounds: f64,
    /// Silence cut-off outcomes; `None` when the defense is off, so
    /// defense-free reports are unchanged by the cut machinery existing.
    pub cuts: Option<CutStats>,
    /// Fault-injection counters; `None` when the fault plan is inactive.
    pub fault_counters: Option<FaultCounters>,
    /// Digest-exchange wire accounting; `None` under the classic
    /// full-window round, so pre-digest reports are unchanged by the
    /// substrate existing.
    pub digest: Option<DigestStats>,
}

impl BarGossipReport {
    /// Delivery fraction for isolated nodes (the paper's y-axis).
    pub fn isolated_delivery(&self) -> f64 {
        self.delivery.isolated
    }

    /// Delivery fraction for satiated-set nodes.
    pub fn satiated_delivery(&self) -> f64 {
        self.delivery.satiated
    }

    /// Delivery fraction over all honest nodes.
    pub fn overall_delivery(&self) -> f64 {
        self.delivery.overall
    }

    /// Whether isolated nodes find the stream usable (> threshold).
    pub fn isolated_usable(&self) -> bool {
        self.delivery.isolated > self.usability_threshold
    }
}

/// The BAR Gossip simulator.
///
/// ```
/// use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim};
///
/// let cfg = BarGossipConfig::builder()
///     .nodes(60)
///     .updates_per_round(4)
///     .copies_seeded(6)
///     .rounds(20)
///     .build()?;
/// let report = BarGossipSim::new(cfg, AttackPlan::none(), 7).run_to_report();
/// assert!(report.overall_delivery() > 0.9, "healthy system delivers");
/// # Ok::<(), bar_gossip::config::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BarGossipSim {
    cfg: BarGossipConfig,
    plan: AttackPlan,
    // ---- struct-of-arrays per-node state, keyed by node index ----
    /// Per-node update windows. A node's window is only advanced once
    /// the node is *engaged* (has ever been present); see `engaged`.
    windows: Vec<WindowSet>,
    /// Metric class fixed at assignment time (isolated vs satiated).
    class: Vec<NodeClass>,
    /// Nodes the attacker currently tries to satiate. Equals the
    /// satiated class for the static attacks of Figures 1-3; rotates
    /// under [`AttackPlan::rotation_period`].
    target: BitSet,
    /// Obedient reporters (report-and-evict defense).
    obedient: BitSet,
    /// Evicted by the report defense.
    evicted: BitSet,
    /// Cut by the silence cut-off defense (excluded like `evicted`).
    cut: BitSet,
    /// Nodes that have ever been present. A flash-crowd node still
    /// waiting outside the system is *disengaged*: its window is not
    /// advanced (the lazy-window seam that makes `advance_windows`
    /// `O(engaged)` instead of `O(population)`) and it accumulates
    /// zero deliveries — exactly what the dense path computed for it.
    /// On arrival the window is fast-forwarded into lockstep
    /// ([`WindowSet::skip_to`]) and its unusable-round counter is
    /// seeded with the measured expiries it slept through.
    engaged: BitSet,
    /// The sharded activity index over node indices: active =
    /// present ∧ ¬down ∧ ¬evicted ∧ ¬cut, rebuilt word-parallel at the
    /// top of every round. Round loops walk this instead of `0..n`, so
    /// per-step cost scales with active nodes, not total population.
    shards: ShardMap,
    /// Word-parallel scratch mask for the rebuilds above.
    mask_scratch: BitSet,
    /// Attacker node indices, ascending (class is fixed at assignment).
    attacker_list: Vec<u32>,
    /// Honest node indices, ascending.
    honest_list: Vec<u32>,
    /// Static per-class node counts (classes never change), indexed by
    /// `class_idx`. Expiry accounting multiplies by these totals so
    /// disengaged nodes still count against delivery, as in the dense
    /// path.
    class_counts: [u64; 3],
    /// Whether the fault plan can touch messages at all; hoisted out of
    /// `faulty_send` so inert plans skip the fate machinery entirely.
    faults_msg: bool,
    /// Every update released (the reference window).
    full: WindowSet,
    /// Ideal-attack pooled seeds (the out-of-band channel).
    pool: WindowSet,
    schedule: PartnerSchedule,
    rng: DetRng,
    authority: Authority,
    meter: BandwidthMeter,
    trace: TraceBuffer,
    round: Round,
    /// delivered[class] / totals[class] over expired measured rounds.
    delivered: [u64; 3],
    totals: [u64; 3],
    attacker_union_delivered: u64,
    attacker_union_total: u64,
    /// Distinct reporters per node (report-and-evict defense).
    reporters: Vec<BitSet>,
    evictions: u32,
    isolated_series: Vec<(Round, f64)>,
    /// Incoming interactions served this round, per node, per protocol.
    served_balanced: Vec<u32>,
    served_push: Vec<u32>,
    /// Nodes being fed "sufficiently rapidly" by the Observation 3.1
    /// harness: they receive each new batch the instant it is released.
    fed: BitSet,
    /// Per-node delivered updates over measured expired rounds.
    node_delivered: Vec<u64>,
    /// Per-node count of measured rounds below the usability threshold.
    node_unusable_rounds: Vec<u32>,
    /// Measured expired rounds so far.
    measured_rounds: u32,
    /// Attack timing stepper (dormant/cooperate vs defect phases).
    schedule_state: ScheduleState,
    /// Whether the schedule has the attack on this round. While off,
    /// attacker nodes cooperate: they run the honest protocol like
    /// everyone else (building stock the eventual defection exploits).
    attack_active: bool,
    /// Membership under churn; everyone present without churn.
    population: Population,
    /// Fault injection (from `cfg.faults`); inert under the default plan.
    faults: FaultState,
    /// Fault-masquerading attackers' silence draws. Forked at
    /// construction (stream-invisible) and drawn from only when a
    /// masquerade attacker sends — `chance(0.0)` draws nothing, so on a
    /// perfect network the attacker is bit-for-bit honest.
    masq_rng: DetRng,
    /// Distinct silence accusers per node (cut-off defense).
    accusers: Vec<BitSet>,
    /// Honest nodes cut by the silence defense.
    cut_honest: u32,
    /// Attacker nodes cut by the silence defense.
    cut_attacker: u32,
    /// Intra-run worker pool for the plan phase of each exchange round
    /// (`cfg.run_threads`; figures are byte-identical for any count).
    run_pool: WorkerPool,
    // Scratch buffers for the allocation-free round loop (see module
    // docs); contents are meaningless between phases.
    alive_scratch: Vec<usize>,
    picks_scratch: Vec<usize>,
    /// Reusable exchange-plan batch (the plan/apply split's worklist).
    plan_batch: ExchangePlan,
    /// Per-chunk entry counts for the pool's partitioned plan fill.
    chunk_sizes: Vec<usize>,
    /// Per-chunk shard-range bounds, parallel to `chunk_sizes`.
    chunk_bounds: Vec<(usize, usize)>,
    gift_scratch: Vec<UpdateId>,
    returned_scratch: Vec<UpdateId>,
    balanced_scratch: BalancedOutcome,
    push_scratch: PushOutcome,
    /// Two-leg digest-exchange state; `None` runs the classic
    /// full-window round untouched.
    digest_state: Option<DigestState>,
}

/// Modeled wire size of one update payload, in bytes (a stream packet).
/// The absolute value is a convention — bytes-on-wire metrics compare
/// *across* curves sharing it, not against a real deployment.
pub const UPDATE_WIRE_BYTES: u64 = 1024;

/// Modeled wire size of one requested update id (or one region mask),
/// in bytes.
pub const ID_WIRE_BYTES: u64 = 8;

/// Per-run state of the two-leg digest exchange (present only when
/// [`BarGossipConfig::digest`] is set, so classic runs carry none of
/// it). All buffers are sized at construction; the steady-state digest
/// round allocates nothing.
#[derive(Debug, Clone)]
struct DigestState {
    /// The digest knobs in force.
    dcfg: DigestExchangeConfig,
    /// Scratch bloom filter, rebuilt per advertisement (bloom mode).
    bloom: BloomDigest,
    /// Ids the initiator requests from the partner this exchange.
    want_initiator: Vec<UpdateId>,
    /// Ids the partner requests from the initiator this exchange.
    want_partner: Vec<UpdateId>,
    /// Transfer-leg delivery buffer (after poison/fp filtering).
    deliver: Vec<UpdateId>,
    /// The poisoning attacker's per-owed-update withhold draws. Forked
    /// at construction (stream-invisible); drawn only when a poison
    /// attacker answers a request, and `chance(0.0)` draws nothing.
    poison_rng: DetRng,
    /// The digest-audit defense's sampling draws; `audit = 0.0` draws
    /// nothing.
    audit_rng: DetRng,
    /// Wire accounting for the report.
    stats: DigestStats,
}

/// Active-node floor below which the plan phase stays on the calling
/// thread even when the pool has more workers: at small populations the
/// spawn/join cost of a scoped chunk fan-out exceeds the walk itself,
/// and the sequential path is what the alloc-guard suite pins as
/// allocation-free.
const PLAN_POOL_MIN_ACTIVE: usize = 1 << 14;

/// Pack an update id into the digest key space: `round * 64 + slot`
/// (slots are capped at 64 per round, so the packing is injective).
#[inline]
fn pack_id(round: Round, slot: u32) -> u64 {
    (round << 6) | u64::from(slot)
}

fn class_idx(class: NodeClass) -> usize {
    match class {
        NodeClass::Isolated => 0,
        NodeClass::Satiated => 1,
        NodeClass::Attacker => 2,
    }
}

impl BarGossipSim {
    /// Build a simulator for `cfg` under `plan`, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation (use the builder, which validates).
    pub fn new(cfg: BarGossipConfig, plan: AttackPlan, seed: u64) -> Self {
        cfg.validate().expect("invalid BarGossipConfig");
        let n = cfg.nodes;
        let rng = DetRng::seed_from(seed).fork("bar-gossip");

        // Assign attacker nodes, then satiated targets among the honest.
        let mut assign_rng = rng.fork("assignment");
        let attacker_count = plan.attacker_count(n) as usize;
        let mut classes = vec![NodeClass::Isolated; n as usize];
        let attacker_picks = assign_rng.sample_indices(n as usize, attacker_count);
        for &i in &attacker_picks {
            classes[i] = NodeClass::Attacker;
        }
        let honest: Vec<usize> = (0..n as usize)
            .filter(|&i| classes[i] != NodeClass::Attacker)
            .collect();
        let satiated_count = (plan.satiated_honest_count(n) as usize).min(honest.len());
        for &hi in assign_rng
            .sample_indices(honest.len(), satiated_count)
            .iter()
        {
            classes[honest[hi]] = NodeClass::Satiated;
        }

        // Obedient reporters among honest nodes (drawn only under the
        // report defense, exactly as before, so rng streams match).
        let mut obedient = BitSet::new(n as usize);
        if let Some(report) = &cfg.defenses.report {
            let k = ((honest.len() as f64) * report.obedient_fraction).round() as usize;
            for &hi in assign_rng
                .sample_indices(honest.len(), k.min(honest.len()))
                .iter()
            {
                obedient.insert(honest[hi]);
            }
        }

        let window = WindowSet::new(cfg.updates_per_round, cfg.update_lifetime);
        let windows: Vec<WindowSet> = vec![window.clone(); n as usize];
        let mut target = BitSet::new(n as usize);
        let mut class_counts = [0u64; 3];
        let mut attacker_list = Vec::new();
        let mut honest_list = Vec::new();
        for (i, &c) in classes.iter().enumerate() {
            class_counts[class_idx(c)] += 1;
            if c == NodeClass::Satiated {
                target.insert(i);
            }
            if c == NodeClass::Attacker {
                attacker_list.push(i as u32);
            } else {
                honest_list.push(i as u32);
            }
        }

        let mut population = Population::new(n as usize, cfg.churn, rng.fork("population"));
        // Flash-crowd nodes are withdrawn now (index-ordered, no
        // randomness) and enter with empty windows at their wave's
        // round. Attackers are exempt from the holdback — they churn
        // like anyone but the crowd itself is honest — so the defection
        // and the crowd stay independently timed dimensions.
        for (i, &class) in classes.iter().enumerate() {
            if class == NodeClass::Attacker {
                population.exempt_arrival(i);
            }
        }
        population.set_arrival(cfg.arrival);
        let faults = FaultState::new(n as usize, cfg.faults, &rng);
        // Everyone present at round 0 is engaged; flash-crowd nodes
        // engage when their wave lands.
        let engaged = population.present().clone();
        // Digest-exchange state only when configured. The forks below
        // are stream-invisible (forking never advances the parent), so
        // classic runs are bit-identical whether or not this substrate
        // exists. Buffers are capacity-reserved for the full live
        // window, so the steady digest round never reallocates.
        let digest_state = cfg.digest.map(|dcfg| {
            let live = (cfg.updates_per_round * cfg.update_lifetime) as usize;
            DigestState {
                dcfg,
                bloom: BloomDigest::new(dcfg.bits, dcfg.hashes),
                want_initiator: Vec::with_capacity(live),
                want_partner: Vec::with_capacity(live),
                deliver: Vec::with_capacity(live),
                poison_rng: rng.fork("poison"),
                audit_rng: rng.fork("audit"),
                stats: DigestStats::default(),
            }
        });
        BarGossipSim {
            full: window.clone(),
            pool: window,
            schedule: PartnerSchedule::new(rng.fork("schedule").next_u64(), n),
            schedule_state: ScheduleState::seeded(plan.schedule, rng.fork("adaptive")),
            attack_active: false,
            population,
            faults,
            faults_msg: cfg.faults.has_message_faults(),
            masq_rng: rng.fork("masquerade"),
            // The accuser/reporter quorum sets are per-node bitsets —
            // O(n²) bits — so they are only materialised when their
            // defense is configured (they are never touched otherwise,
            // and a million-node run cannot afford vestigial ones).
            accusers: if cfg.defenses.cutoff_quorum.is_some() {
                vec![BitSet::new(n as usize); n as usize]
            } else {
                Vec::new()
            },
            cut_honest: 0,
            cut_attacker: 0,
            authority: Authority::new(rng.fork("authority").next_u64(), n),
            meter: BandwidthMeter::new(n),
            trace: TraceBuffer::disabled(),
            round: 0,
            delivered: [0; 3],
            totals: [0; 3],
            attacker_union_delivered: 0,
            attacker_union_total: 0,
            reporters: if cfg.defenses.report.is_some() {
                vec![BitSet::new(n as usize); n as usize]
            } else {
                Vec::new()
            },
            evictions: 0,
            // One sample per measured round; reserved up front so the
            // per-round push in `advance_windows` never reallocates
            // mid-run (the steady-state step stays allocation-free).
            isolated_series: Vec::with_capacity(cfg.rounds as usize),
            served_balanced: vec![0; n as usize],
            served_push: vec![0; n as usize],
            fed: BitSet::new(n as usize),
            node_delivered: vec![0; n as usize],
            node_unusable_rounds: vec![0; n as usize],
            measured_rounds: 0,
            run_pool: WorkerPool::new(cfg.run_threads),
            alive_scratch: Vec::with_capacity(n as usize),
            picks_scratch: Vec::new(),
            plan_batch: ExchangePlan::new(),
            chunk_sizes: Vec::new(),
            chunk_bounds: Vec::new(),
            gift_scratch: Vec::new(),
            returned_scratch: Vec::new(),
            balanced_scratch: BalancedOutcome::default(),
            push_scratch: PushOutcome::default(),
            digest_state,
            cfg,
            plan,
            windows,
            class: classes,
            target,
            obedient,
            evicted: BitSet::new(n as usize),
            cut: BitSet::new(n as usize),
            engaged,
            shards: ShardMap::new(n as usize),
            mask_scratch: BitSet::new(n as usize),
            attacker_list,
            honest_list,
            class_counts,
            rng,
        }
    }

    /// Enable event tracing with the given buffer capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceBuffer::new(capacity);
    }

    /// The trace buffer (disabled by default).
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// The configuration in force.
    pub fn config(&self) -> &BarGossipConfig {
        &self.cfg
    }

    /// The attack plan in force.
    pub fn plan(&self) -> &AttackPlan {
        &self.plan
    }

    /// Metric class of `node`.
    pub fn class_of(&self, node: NodeId) -> NodeClass {
        self.class[node.index()]
    }

    /// Whether `node` has been evicted by the report defense.
    pub fn is_evicted(&self, node: NodeId) -> bool {
        self.evicted.contains(node.index())
    }

    /// Bandwidth meter (units = updates/junk items).
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// The sharded activity index (this round's snapshot).
    pub fn shard_map(&self) -> &ShardMap {
        &self.shards
    }

    fn is_attacker(&self, node: NodeId) -> bool {
        self.class[node.index()] == NodeClass::Attacker
    }

    fn alive(&self, node: NodeId) -> bool {
        let i = node.index();
        !self.evicted.contains(i)
            && !self.cut.contains(i)
            && !self.faults.is_down(i)
            && self.population.is_present(i)
    }

    /// Engage `node` if it has never been present before: fast-forward
    /// its window into lockstep and seed its unusable-round counter
    /// with the measured expiries it slept through (a disengaged node
    /// delivered nothing in each of them, exactly like an empty dense
    /// window).
    fn ensure_engaged(&mut self, i: usize) {
        if self.engaged.contains(i) {
            return;
        }
        if self.round > 0 {
            self.windows[i].skip_to(self.round - 1);
        }
        self.engaged.insert(i);
        self.node_unusable_rounds[i] = self.measured_rounds;
    }

    /// Honest responders serve at most `responder_cap` incoming
    /// interactions per protocol per round; attackers accept everything
    /// — except covert (masquerade/poison) attackers, who stay
    /// protocol-obedient to remain indistinguishable.
    fn responder_accepts(&mut self, node: NodeId, push: bool) -> bool {
        if self.attack_active && !self.plan.kind.covert() && self.is_attacker(node) {
            return true;
        }
        let cap = self.cfg.responder_cap.map_or(u32::MAX, |c| c);
        let served = if push {
            &mut self.served_push[node.index()]
        } else {
            &mut self.served_balanced[node.index()]
        };
        if *served >= cap {
            false
        } else {
            *served += 1;
            true
        }
    }

    /// Whether `sender`'s side of this interaction goes silent: a
    /// fault-masquerading attacker withholds at the *round-aware*
    /// ambient fault rate
    /// ([`lotus_core::faults::FaultState::ambient_silence_rate`]), which
    /// folds expected partition blocking in while an epoch is open —
    /// matching only loss and delay would understate real ambient
    /// silence there and make the masquerade statistically visible. Its
    /// defections stay indistinguishable from background silence. Draws
    /// nothing for honest senders, other attack kinds, or a zero
    /// ambient rate (`chance(0.0)` is draw-free).
    fn masquerade_silent(&mut self, sender: NodeId) -> bool {
        if !self.attack_active
            || self.plan.kind != AttackKind::Masquerade
            || !self.is_attacker(sender)
        {
            return false;
        }
        let rate = self.faults.ambient_silence_rate();
        self.masq_rng.chance(rate)
    }

    /// Deliver one directed batch `from → to` through the masquerade
    /// filter and the fault layer; returns whether the receiver got it.
    /// Uploads are metered on send (a lost message still cost the sender
    /// bandwidth); a masquerade-silent sender sends nothing and meters
    /// nothing; a duplicated batch meters its surplus as junk. Draw-free
    /// when no message faults and no masquerade attack are configured,
    /// so fault-free runs stay bit-identical.
    // lint: hot-loop
    fn faulty_send(&mut self, from: NodeId, to: NodeId, payload: u64, junk: u64) -> bool {
        let units = payload + junk;
        if units == 0 || self.masquerade_silent(from) {
            return false;
        }
        // Inert fault plans skip the fate machinery entirely: the flag
        // is hoisted out of the hot loop so a fault-free delivery path
        // costs a predicted-taken branch, not a call (this recovered
        // the bench regression the fault layer's introduction cost).
        let fate = if self.faults_msg {
            self.faults.fate(from.index(), to.index())
        } else {
            Fate::Deliver
        };
        if payload > 0 {
            self.meter.transfer(from, to, MsgClass::Payload, payload);
        }
        if junk > 0 {
            self.meter.transfer(from, to, MsgClass::Junk, junk);
        }
        match fate {
            Fate::Drop => false,
            Fate::Duplicate => {
                self.meter.transfer(from, to, MsgClass::Junk, units);
                true
            }
            Fate::Deliver => true,
        }
    }

    /// The silence cut-off defense: `observer` expected a delivery from
    /// `partner` inside an established balanced exchange (digests were
    /// traded, so the want was mutual knowledge) and got nothing. One
    /// strike per distinct accuser; `cutoff_quorum` accusers cut the
    /// node from the protocol. Attacker nodes never file — a
    /// masquerading defector wants less scrutiny, not more. Silence in a
    /// push is not actionable: a lost offer and a withheld payment look
    /// identical to the initiator.
    fn note_silence(&mut self, observer: NodeId, partner: NodeId, now: Round) {
        let Some(quorum) = self.cfg.defenses.cutoff_quorum else {
            return;
        };
        if self.class[observer.index()] == NodeClass::Attacker {
            return;
        }
        let set = &mut self.accusers[partner.index()];
        set.insert(observer.index());
        if set.len() as u32 >= quorum && !self.cut.contains(partner.index()) {
            self.cut.insert(partner.index());
            if self.class[partner.index()] == NodeClass::Attacker {
                self.cut_attacker += 1;
            } else {
                self.cut_honest += 1;
            }
            self.trace
                .emit(now, partner, EventKind::Evict, "cut on silence quorum");
        }
    }

    // ------------------------------------------------------------------
    // Round phases.
    // ------------------------------------------------------------------

    /// Canonical-metric observation for metric-threshold schedules,
    /// computed from the running delivery counters (no report, no
    /// allocation). `None` until the first measured expiry — an
    /// unmeasured metric must not latch a threshold trigger. Presence is
    /// answered from live membership, so `presence-*` triggers observe
    /// from round 0.
    fn observe(&self, key: MetricKey) -> Option<f64> {
        if key == MetricKey::PresentFraction {
            return Some(self.population.present_fraction());
        }
        if key == MetricKey::FalseCutRate {
            // Running honest collateral of the cut-off defense; absent
            // when the defense is off (nothing to observe).
            self.cfg.defenses.cutoff_quorum?;
            let honest = self.honest_list.len();
            return Some(if honest == 0 {
                0.0
            } else {
                f64::from(self.cut_honest) / honest as f64
            });
        }
        schedule::class_delivery_observation(&self.delivered, &self.totals, key)
    }

    /// Phase 0: account attacker union coverage for the round about to
    /// expire (must run before the windows slide).
    fn account_attacker_coverage(&mut self, t: Round) {
        if !self.plan.kind.satiates() || t < u64::from(self.cfg.update_lifetime) {
            return;
        }
        let r = t - u64::from(self.cfg.update_lifetime);
        if !self.cfg.is_measured_round(r) {
            return;
        }
        let mut union = 0u64;
        for &i in &self.attacker_list {
            union |= self.windows[i as usize].mask(r).unwrap_or(0);
        }
        // The ideal attack's pool also counts (it is what gets forwarded).
        if self.plan.kind == AttackKind::IdealLotusEater {
            union |= self.pool.mask(r).unwrap_or(0);
        }
        self.attacker_union_delivered += u64::from(union.count_ones());
        self.attacker_union_total += u64::from(self.cfg.updates_per_round);
    }

    /// Phase 1: slide windows; account expired (measured) rounds.
    ///
    /// Only *engaged* windows are advanced — `O(engaged)`, the hottest
    /// win of the sharded engine at flash-crowd scale. A disengaged
    /// node's dense contribution was always `got = 0` with one
    /// unusable round per measured expiry; the class totals below use
    /// the static per-class counts (every window popped in lockstep in
    /// the dense loop, so its `class_nodes` tally was exactly those
    /// counts), and the unusable rounds are settled at engage time /
    /// report time. Reports stay bit-identical.
    // lint: hot-loop
    fn advance_windows(&mut self, t: Round) {
        let popped_full = self.full.advance(t);
        let _ = self.pool.advance(t);
        if let Some((expired_round, full_mask)) = popped_full {
            let measured = self.cfg.is_measured_round(expired_round);
            let total = u64::from(full_mask.count_ones());
            let mut class_delivered = [0u64; 3];
            let usable_floor = self.cfg.usability_threshold;
            for i in self.engaged.iter() {
                let popped = self.windows[i].advance(t);
                if !measured {
                    continue;
                }
                let (r, mask) = popped.expect("engaged windows advance in lockstep");
                debug_assert_eq!(r, expired_round);
                let ci = class_idx(self.class[i]);
                let got = u64::from((mask & full_mask).count_ones());
                class_delivered[ci] += got;
                if self.class[i] != NodeClass::Attacker {
                    self.node_delivered[i] += got;
                    if total > 0 && (got as f64 / total as f64) <= usable_floor {
                        self.node_unusable_rounds[i] += 1;
                    }
                }
            }
            if measured {
                self.measured_rounds += 1;
                for (ci, got) in class_delivered.iter().enumerate() {
                    self.delivered[ci] += got;
                    self.totals[ci] += total * self.class_counts[ci];
                }
                let iso = if self.class_counts[0] * total > 0 {
                    class_delivered[0] as f64 / (self.class_counts[0] * total) as f64
                } else {
                    0.0
                };
                self.isolated_series.push((expired_round, iso));
            }
            return;
        }
        // No expiry yet: still advance engaged windows in lockstep.
        for i in self.engaged.iter() {
            let _ = self.windows[i].advance(t);
        }
    }

    /// Phase 2: broadcaster releases and seeds the new batch.
    // lint: hot-loop
    fn seed_round(&mut self, t: Round) {
        let mut alive = std::mem::take(&mut self.alive_scratch);
        // The broadcaster itself is reliable infrastructure (the paper's
        // content source): seeding is not subject to message faults, but
        // crashed and cut nodes receive no seeds. The shard walk yields
        // exactly the dense `(0..n).filter(alive)` list in the same
        // ascending order (the activity mask *is* that filter), so the
        // seeding draws are unchanged.
        self.shards.collect_active_into(&mut alive);
        let mut picks = std::mem::take(&mut self.picks_scratch);
        let copies = (self.cfg.copies_seeded as usize).min(alive.len());
        let mut seed_rng = self.rng.fork_idx("seeding", t);
        for slot in 0..self.cfg.updates_per_round {
            let id = UpdateId { round: t, slot };
            self.full.insert(id);
            seed_rng.sample_indices_into(alive.len(), copies, &mut picks);
            for &pick in &picks {
                let i = alive[pick];
                self.windows[i].insert(id);
                if self.class[i] == NodeClass::Attacker
                    && self.plan.kind == AttackKind::IdealLotusEater
                {
                    self.pool.insert(id);
                }
            }
        }
        self.alive_scratch = alive;
        self.picks_scratch = picks;
    }

    /// Phase 3 (ideal attack only): instant out-of-band forwarding of the
    /// attacker pool to every satiated-set node.
    fn ideal_forwarding(&mut self) {
        if self.plan.kind != AttackKind::IdealLotusEater || !self.attack_active {
            return;
        }
        // Representative attacker for bandwidth attribution (lowest
        // live attacker index, as in the dense scan).
        let Some(rep) = self
            .attacker_list
            .iter()
            .map(|&i| i as usize)
            .find(|&i| self.alive(NodeId(i as u32)))
        else {
            return;
        };
        for i in self.target.iter() {
            if !self.alive(NodeId(i as u32)) {
                continue;
            }
            let gained = self.windows[i].missing_from(&self.pool) as u64;
            if gained > 0 {
                self.windows[i].union_with(&self.pool);
                self.meter.transfer(
                    NodeId(rep as u32),
                    NodeId(i as u32),
                    MsgClass::Payload,
                    gained,
                );
            }
        }
    }

    /// A trade-attack gift: `attacker` gives `target` everything *it*
    /// holds that the target lacks (rate limit permitting); the target
    /// reciprocates protocol-style with up to the same number of updates
    /// when `attacker_receives` is on. Obedient targets detect the
    /// excessive service and file a signed report.
    ///
    /// `push_slot` selects the excess bound: in a push interaction service
    /// up to `push_size` is protocol-legal.
    fn attacker_gift(&mut self, attacker: NodeId, target: NodeId, now: Round, push_slot: bool) {
        let cap = self
            .cfg
            .defenses
            .rate_limit
            .map_or(usize::MAX, |c| c as usize);
        let mut gift = std::mem::take(&mut self.gift_scratch);
        self.windows[target.index()].wanted_from_into(
            &self.windows[attacker.index()],
            now,
            cap,
            0,
            u32::MAX,
            &mut gift,
        );
        if gift.is_empty() {
            self.gift_scratch = gift;
            return;
        }
        // The gift rides the same faulty links as honest traffic; a
        // dropped gift is never seen by the target, so it neither
        // satiates nor triggers the excess-service detector.
        if !self.faulty_send(attacker, target, gift.len() as u64, 0) {
            self.gift_scratch = gift;
            return;
        }
        let mut returned = std::mem::take(&mut self.returned_scratch);
        returned.clear();
        if self.cfg.attacker_receives {
            self.windows[attacker.index()].wanted_from_into(
                &self.windows[target.index()],
                now,
                gift.len(),
                0,
                u32::MAX,
                &mut returned,
            );
        }
        for &id in &gift {
            self.windows[target.index()].insert(id);
        }
        if self.faulty_send(target, attacker, returned.len() as u64, 0) {
            for &id in &returned {
                self.windows[attacker.index()].insert(id);
            }
        }
        self.trace.emit_with(now, target, EventKind::Attack, || {
            format!("gift of {} from {attacker}", gift.len())
        });

        if let Some(report) = self.cfg.defenses.report {
            // In a push slot, service up to push_size is protocol-legal;
            // in a balanced slot only reciprocity (+slack) is.
            let effective_received = if push_slot {
                returned.len().max(self.cfg.push_size as usize)
            } else {
                returned.len()
            };
            if is_excessive_service(gift.len(), effective_received, report.excess_slack)
                && self.obedient.contains(target.index())
            {
                self.file_report(target, attacker, now, gift.len() as u64);
            }
        }
        self.gift_scratch = gift;
        self.returned_scratch = returned;
    }

    /// Disjoint mutable windows of two *distinct* nodes: the split-borrow
    /// helper behind the clone-free attacker synchronisation.
    fn windows_pair(&mut self, a: usize, b: usize) -> (&mut WindowSet, &mut WindowSet) {
        debug_assert_ne!(a, b, "windows_pair needs distinct nodes");
        if a < b {
            let (lo, hi) = self.windows.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.windows.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }

    /// Colluding attacker nodes synchronise fully when the schedule pairs
    /// them — the only in-protocol pooling the trade attack gets.
    fn attacker_sync(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        let (wa, wb) = self.windows_pair(a.index(), b.index());
        let gained_b = wb.missing_from(wa) as u64;
        let gained_a = wa.missing_from(wb) as u64;
        // Both end at the same union, so the two in-place unions replace
        // the clone-then-merge exactly.
        wb.union_with(wa);
        wa.union_with(wb);
        if gained_b > 0 {
            self.meter.transfer(a, b, MsgClass::Payload, gained_b);
        }
        if gained_a > 0 {
            self.meter.transfer(b, a, MsgClass::Payload, gained_a);
        }
    }

    /// File a signed excess-service report; evict on quorum.
    fn file_report(&mut self, reporter: NodeId, reported: NodeId, now: Round, amount: u64) {
        let report_cfg = self
            .cfg
            .defenses
            .report
            .expect("file_report requires the report defense");
        // Evidence: the reporter signs (reported, round, amount); the
        // tracker verifies before accepting. With the simulated authority
        // this always verifies, but the flow matches the real protocol.
        let evidence = self.authority.sign(reporter, (reported, now, amount));
        if self.authority.verify(&evidence).is_err() {
            return; // forged evidence is dropped
        }
        self.trace.emit_with(now, reported, EventKind::Report, || {
            format!("excess service reported by {reporter}")
        });
        let set = &mut self.reporters[reported.index()];
        set.insert(reporter.index());
        if set.len() as u32 >= report_cfg.quorum && !self.evicted.contains(reported.index()) {
            self.evicted.insert(reported.index());
            self.evictions += 1;
            self.trace
                .emit(now, reported, EventKind::Evict, "evicted on report quorum");
        }
    }

    /// Rotate the satiated target set (when the plan asks for it): the
    /// target window slides over the honest population so every node takes
    /// turns being satiated — and, in between, isolated.
    fn rotate_targets(&mut self, t: Round) {
        let Some(period) = self.plan.rotation_period() else {
            return;
        };
        if !self.plan.kind.satiates() || !t.is_multiple_of(period) {
            return;
        }
        // Honest indices are fixed at assignment time, so the rotation
        // window reads the static ascending `honest_list` directly —
        // the same list the per-rotation dense scan used to rebuild.
        if self.honest_list.is_empty() {
            return;
        }
        let count = (self.plan.satiated_honest_count(self.class.len() as u32) as usize)
            .min(self.honest_list.len());
        self.target.clear();
        let phase = self
            .schedule_state
            .rotation_phase(t)
            .expect("rotation_period() implies a rotation phase");
        for w in schedule::rotating_window(phase, count, self.honest_list.len()) {
            self.target.insert(self.honest_list[w] as usize);
        }
    }

    /// Whether a configured defense can remove nodes *during* an
    /// exchange phase: report-and-evict inserts into `evicted` and the
    /// silence cut-off inserts into `cut` while pairs are being applied.
    /// When neither is on, aliveness is fixed for the whole round (churn
    /// and faults only flip at round start), so the plan's viability
    /// snapshot stays exact through apply and the hot path can skip the
    /// per-pair liveness probes entirely.
    fn mid_phase_removals_possible(&self) -> bool {
        self.cfg.defenses.report.is_some() || self.cfg.defenses.cutoff_quorum.is_some()
    }

    /// Plan-time viability snapshot for a pair. In strict mode (a
    /// defense can remove nodes mid-phase) this probes the live
    /// [`BarGossipSim::alive`] sets; otherwise the round-top shard
    /// snapshot *is* aliveness — one probe per endpoint instead of four.
    /// Link state is static within a round, so it is only sampled for
    /// viable pairs (apply never reads it on skipped ones).
    // lint: hot-loop
    #[inline]
    fn pair_flags(&self, v: NodeId, p: NodeId, strict: bool) -> u8 {
        let viable = if strict {
            self.alive(v) && self.alive(p)
        } else {
            self.shards.contains(v.index()) && self.shards.contains(p.index())
        };
        if !viable {
            return 0;
        }
        if self.faults.link_up(v.index(), p.index()) {
            VIABLE | LINKED
        } else {
            VIABLE
        }
    }

    /// Partition the shard range into at most `run_pool.threads()`
    /// contiguous chunks of near-equal active counts (from the shard
    /// map's cached popcounts — no walk). Chunk boundaries depend on
    /// the worker count, but their concatenation is always the full
    /// ascending shard walk, so plan content never does. Populations
    /// under [`PLAN_POOL_MIN_ACTIVE`] stay on one chunk: the fan-out
    /// costs more than the walk, and the sequential path is what the
    /// alloc-guard suite pins as allocation-free.
    fn plan_chunks(&self, total: usize, sizes: &mut Vec<usize>, bounds: &mut Vec<(usize, usize)>) {
        sizes.clear();
        bounds.clear();
        let workers = if total >= PLAN_POOL_MIN_ACTIVE {
            self.run_pool.threads().max(1)
        } else {
            1
        };
        let shard_count = self.shards.shard_count();
        if workers <= 1 {
            sizes.push(total);
            bounds.push((0, shard_count));
            return;
        }
        let target = total.div_ceil(workers);
        let mut lo = 0usize;
        let mut acc = 0usize;
        for s in 0..shard_count {
            acc += self.shards.shard_active_count(s) as usize;
            if acc >= target && sizes.len() + 1 < workers {
                sizes.push(acc);
                bounds.push((lo, s + 1));
                lo = s + 1;
                acc = 0;
            }
        }
        sizes.push(acc);
        bounds.push((lo, shard_count));
    }

    /// The plan sub-phase shared by both exchange protocols: batch every
    /// initiator's scheduled partner and viability snapshot into
    /// `plan_batch` (ascending walk, chunk-partitioned across the
    /// worker pool), then shuffle the batch with `order_rng` — the same
    /// stream the legacy path used on its bare initiator list, drawing
    /// identically because a Fisher–Yates shuffle depends only on
    /// length. Populations that fit in one shard keep the legacy dense
    /// order — all nodes, shuffled — so paper-scale runs (and their
    /// golden fixtures) are byte-identical. Multi-shard populations
    /// plan only the active shards: dead nodes never even enter the
    /// batch, which is what keeps the round `O(active)` instead of
    /// `O(population)`.
    // lint: hot-loop
    fn plan_phase(&mut self, t: Round, proto: Protocol, mut order_rng: DetRng) {
        let mut plan = std::mem::take(&mut self.plan_batch);
        let planner = self.schedule.planner(t, proto);
        let strict = self.mid_phase_removals_possible();
        let n = self.class.len();
        if n <= self.shards.shard_size() {
            plan.reset(n);
            planner.fill(
                NodeId::all(n as u32),
                |v, p| self.pair_flags(v, p, strict),
                plan.entries_mut(),
            );
        } else {
            let total = self.shards.active_count();
            plan.reset(total);
            let mut sizes = std::mem::take(&mut self.chunk_sizes);
            let mut bounds = std::mem::take(&mut self.chunk_bounds);
            self.plan_chunks(total, &mut sizes, &mut bounds);
            let sim = &*self;
            let bounds_ref = &bounds;
            self.run_pool
                .run_partitioned(plan.entries_mut(), &sizes, |chunk, out| {
                    let (lo, hi) = bounds_ref[chunk];
                    let mut k = 0usize;
                    sim.shards.for_each_active_in(lo..hi, |i| {
                        let v = NodeId(i as u32);
                        let p = planner.partner_of(v);
                        out[k] = PlannedPair {
                            initiator: v,
                            partner: p,
                            flags: sim.pair_flags(v, p, strict),
                        };
                        k += 1;
                    });
                    debug_assert_eq!(k, out.len(), "chunk sizes must match the shard walk");
                });
            self.chunk_sizes = sizes;
            self.chunk_bounds = bounds;
        }
        plan.shuffle(&mut order_rng);
        self.plan_batch = plan;
    }

    /// Phase 4: balanced exchanges — plan, shuffle, sequential apply.
    // lint: hot-loop
    fn balanced_phase(&mut self, t: Round) {
        // Only slots inside active shards can be served this round
        // (responders are alive, and alive ⊆ the round snapshot), so
        // the clear is O(active shards), not a full-slab fill.
        netsim::round::clear_counters_for(&mut self.served_balanced, self.shards.active_ranges());
        self.plan_phase(
            t,
            Protocol::BalancedExchange,
            self.rng.fork_idx("balanced-order", t),
        );
        let strict = self.mid_phase_removals_possible();
        let plan = std::mem::take(&mut self.plan_batch);
        for &e in plan.entries() {
            // Aliveness only shrinks mid-phase, so a pair planned
            // non-viable can never revive; strict mode rechecks the
            // viable remainder against removals applied earlier in this
            // very loop (report evictions, silence cuts).
            if !e.is_viable() {
                continue;
            }
            let (v, p) = (e.initiator, e.partner);
            if strict && (!self.alive(v) || !self.alive(p)) {
                continue;
            }
            if !e.is_linked() {
                // Partitioned apart: the interaction never happens. The
                // blocked-interaction counter ticks here — the position
                // the legacy walk's counting link check sat at.
                self.faults.note_partition_blocked();
                continue;
            }
            // While the schedule has the attack off, attacker nodes run
            // the honest protocol (the cooperate phase), so both classes
            // collapse to honest in the dispatch below. Covert
            // (masquerade/poison) attackers *always* take the honest
            // path — their defection lives inside the delivery step, not
            // in the dispatch.
            let classes = if self.attack_active && !self.plan.kind.covert() {
                (self.class[v.index()], self.class[p.index()])
            } else {
                (NodeClass::Isolated, NodeClass::Isolated)
            };
            match classes {
                (NodeClass::Attacker, NodeClass::Attacker) => {
                    if self.plan.kind == AttackKind::TradeLotusEater {
                        self.attacker_sync(v, p);
                    }
                }
                (NodeClass::Attacker, _) => {
                    if self.plan.kind == AttackKind::TradeLotusEater
                        && self.target.contains(p.index())
                        && self.responder_accepts(p, false)
                    {
                        self.attacker_gift(v, p, t, false);
                    }
                    // Crash/ideal attackers never initiate.
                }
                (_, NodeClass::Attacker) => {
                    if self.plan.kind == AttackKind::TradeLotusEater
                        && self.target.contains(v.index())
                    {
                        // The scheduled exchange gives the attacker an
                        // interaction; it responds by gifting.
                        self.attacker_gift(p, v, t, false);
                    }
                    // Otherwise the exchange fails: the initiator's slot is
                    // wasted (exactly the crash attack's damage).
                }
                (_, _) => {
                    if !self.responder_accepts(p, false) {
                        continue; // responder at capacity: initiation wasted
                    }
                    let mut out = std::mem::take(&mut self.balanced_scratch);
                    balanced_exchange_into(
                        &self.windows[v.index()],
                        &self.windows[p.index()],
                        t,
                        self.cfg.defenses.unbalanced_exchanges,
                        self.cfg.defenses.rate_limit,
                        &mut out,
                    );
                    // Each direction is one message through the fault
                    // layer; an expected-but-silent direction is what the
                    // cut-off defense strikes on (loss and masquerade are
                    // indistinguishable here — by design).
                    if self.faulty_send(p, v, out.to_initiator.len() as u64, 0) {
                        for &id in &out.to_initiator {
                            self.windows[v.index()].insert(id);
                        }
                    } else if !out.to_initiator.is_empty() {
                        self.note_silence(v, p, t);
                    }
                    if self.faulty_send(v, p, out.to_responder.len() as u64, 0) {
                        for &id in &out.to_responder {
                            self.windows[p.index()].insert(id);
                        }
                    } else if !out.to_responder.is_empty() {
                        self.note_silence(p, v, t);
                    }
                    self.balanced_scratch = out;
                }
            }
        }
        self.plan_batch = plan;
    }

    /// Phase 5: optimistic pushes — plan, shuffle, sequential apply.
    // lint: hot-loop
    fn push_phase(&mut self, t: Round) {
        // Shard-range clear, as in `balanced_phase`.
        netsim::round::clear_counters_for(&mut self.served_push, self.shards.active_ranges());
        self.plan_phase(
            t,
            Protocol::OptimisticPush,
            self.rng.fork_idx("push-order", t),
        );
        let strict = self.mid_phase_removals_possible();
        let plan = std::mem::take(&mut self.plan_batch);
        for &e in plan.entries() {
            // Either end planned dead means the legacy walk did nothing
            // for this pair (an attacker initiator with a dead partner
            // entered its branch but took no action), so the skip is
            // exact; strict mode rechecks against mid-phase removals.
            if !e.is_viable() {
                continue;
            }
            let (v, p) = (e.initiator, e.partner);
            if strict && !self.alive(v) {
                continue;
            }
            // Attacker-specific push behaviour only while the attack is
            // on; a cooperating attacker falls through to the honest
            // rational-push logic below, as do covert attackers (whose
            // defection lives inside the delivery step). Note the
            // attacker arms are deliberately *not* gated on the link —
            // the legacy path never was (attacker pooling models an
            // out-of-band channel), and the goldens pin that.
            if self.attack_active && !self.plan.kind.covert() && self.is_attacker(v) {
                if self.plan.kind == AttackKind::TradeLotusEater && (!strict || self.alive(p)) {
                    if self.class[p.index()] == NodeClass::Attacker {
                        self.attacker_sync(v, p);
                    } else if self.target.contains(p.index()) && self.responder_accepts(p, true) {
                        self.attacker_gift(v, p, t, true);
                    }
                }
                continue;
            }
            // Rational initiation condition: only when missing old updates.
            if !wants_push(&self.windows[v.index()], &self.full, t, self.cfg.old_age) {
                continue;
            }
            if strict && !self.alive(p) {
                continue;
            }
            if !e.is_linked() {
                self.faults.note_partition_blocked();
                continue; // partitioned apart
            }
            if self.attack_active && !self.plan.kind.covert() && self.is_attacker(p) {
                if self.plan.kind == AttackKind::TradeLotusEater && self.target.contains(v.index())
                {
                    self.attacker_gift(p, v, t, true);
                }
                continue;
            }
            if !self.responder_accepts(p, true) {
                continue;
            }
            let mut out = std::mem::take(&mut self.push_scratch);
            optimistic_push_into(
                &self.windows[v.index()],
                &self.windows[p.index()],
                t,
                self.cfg.push_size,
                self.cfg.old_age,
                self.cfg.recent_age,
                self.cfg.defenses.rate_limit,
                &mut out,
            );
            if out.is_empty() {
                self.push_scratch = out;
                continue;
            }
            // The offer and the payment are each one message through the
            // fault layer (the payment's junk rides along with its
            // useful updates). No silence strikes here: the initiator
            // cannot tell a lost offer from a withheld payment.
            if self.faulty_send(v, p, out.to_responder.len() as u64, 0) {
                for &id in &out.to_responder {
                    self.windows[p.index()].insert(id);
                }
            }
            if self.faulty_send(
                p,
                v,
                out.useful_to_initiator.len() as u64,
                u64::from(out.junk_to_initiator),
            ) {
                for &id in &out.useful_to_initiator {
                    self.windows[v.index()].insert(id);
                }
            }
            self.push_scratch = out;
        }
        self.plan_batch = plan;
    }

    /// Phases 4+5 (digest mode): the two-leg digest exchange replaces
    /// both classic exchange phases. Planning, shuffling, strict
    /// rechecks and the attacker-class dispatch mirror
    /// [`BarGossipSim::balanced_phase`] exactly — only the honest arm
    /// differs, swapping the full-window balanced trade for an
    /// advertise-then-diff exchange ([`BarGossipSim::digest_exchange`]).
    /// Covert (masquerade/poison) attackers take the honest arm; their
    /// defection lives inside the transfer leg.
    // lint: hot-loop
    fn digest_phase(&mut self, t: Round) {
        netsim::round::clear_counters_for(&mut self.served_balanced, self.shards.active_ranges());
        self.plan_phase(
            t,
            Protocol::BalancedExchange,
            self.rng.fork_idx("digest-order", t),
        );
        let strict = self.mid_phase_removals_possible();
        let plan = std::mem::take(&mut self.plan_batch);
        for &e in plan.entries() {
            if !e.is_viable() {
                continue;
            }
            let (v, p) = (e.initiator, e.partner);
            if strict && (!self.alive(v) || !self.alive(p)) {
                continue;
            }
            if !e.is_linked() {
                self.faults.note_partition_blocked();
                continue;
            }
            let classes = if self.attack_active && !self.plan.kind.covert() {
                (self.class[v.index()], self.class[p.index()])
            } else {
                (NodeClass::Isolated, NodeClass::Isolated)
            };
            match classes {
                (NodeClass::Attacker, NodeClass::Attacker) => {
                    if self.plan.kind == AttackKind::TradeLotusEater {
                        self.attacker_sync(v, p);
                    }
                }
                (NodeClass::Attacker, _) => {
                    if self.plan.kind == AttackKind::TradeLotusEater
                        && self.target.contains(p.index())
                        && self.responder_accepts(p, false)
                    {
                        self.attacker_gift(v, p, t, false);
                    }
                }
                (_, NodeClass::Attacker) => {
                    if self.plan.kind == AttackKind::TradeLotusEater
                        && self.target.contains(v.index())
                    {
                        self.attacker_gift(p, v, t, false);
                    }
                }
                (_, _) => {
                    if !self.responder_accepts(p, false) {
                        continue;
                    }
                    self.digest_exchange(v, p, t);
                }
            }
        }
        self.plan_batch = plan;
    }

    /// One two-leg digest exchange between `v` (initiator) and `p`
    /// (responder). Leg 1 swaps advertisements and builds each side's
    /// request list; leg 2 ships the requested updates
    /// ([`BarGossipSim::digest_deliver`]).
    ///
    /// * **Bloom mode** — each side advertises a [`BloomDigest`] of its
    ///   whole window (`bits/8` bytes each way); the other side probes
    ///   for its *own missing* live ids in round/slot order and requests
    ///   the positives (8 bytes per id). No false negatives means every
    ///   id the sender holds and the receiver needs is requested; a
    ///   false positive wastes one request.
    /// * **Exact mode** — the sides swap one [`region_hash`] per live
    ///   round (8 bytes each way); divergent rounds exchange their raw
    ///   slot masks (8 bytes each way, counted as request bytes) and
    ///   diff exactly.
    ///
    /// The X9 rate limit caps each request list at build time — the
    /// receiver knows the cap, so truncation can never read as
    /// withholding. Held ids enter the want lists in round/slot order in
    /// both modes, so the poison stream draws identically whichever
    /// advertisement is in force (the delivery-equivalence golden pins
    /// this).
    fn digest_exchange(&mut self, v: NodeId, p: NodeId, t: Round) {
        let mut st = self
            .digest_state
            .take()
            .expect("digest_phase implies digest state");
        let limit = self
            .cfg
            .defenses
            .rate_limit
            .map_or(usize::MAX, |c| c as usize);
        let mut want_v = std::mem::take(&mut st.want_initiator);
        let mut want_p = std::mem::take(&mut st.want_partner);
        if st.dcfg.exact {
            want_v.clear();
            want_p.clear();
            let start = self.windows[v.index()].start();
            st.stats.bytes_digests += 2 * ID_WIRE_BYTES * (t - start + 1);
            for r in start..=t {
                let mv = self.windows[v.index()].mask(r).unwrap_or(0);
                let mp = self.windows[p.index()].mask(r).unwrap_or(0);
                if region_hash(r, mv) == region_hash(r, mp) {
                    continue;
                }
                st.stats.bytes_requests += 2 * ID_WIRE_BYTES;
                let mut only = mp & !mv;
                while only != 0 {
                    let slot = only.trailing_zeros();
                    only &= only - 1;
                    if want_v.len() < limit {
                        want_v.push(UpdateId { round: r, slot });
                    }
                }
                let mut only = mv & !mp;
                while only != 0 {
                    let slot = only.trailing_zeros();
                    only &= only - 1;
                    if want_p.len() < limit {
                        want_p.push(UpdateId { round: r, slot });
                    }
                }
            }
        } else {
            Self::bloom_wants(
                &mut st.bloom,
                &self.windows[p.index()],
                &self.windows[v.index()],
                t,
                limit,
                &mut want_v,
            );
            Self::bloom_wants(
                &mut st.bloom,
                &self.windows[v.index()],
                &self.windows[p.index()],
                t,
                limit,
                &mut want_p,
            );
            st.stats.bytes_digests += 2 * st.bloom.size_bytes();
            st.stats.bytes_requests += ID_WIRE_BYTES * (want_v.len() + want_p.len()) as u64;
        }
        st.stats.requests += (want_v.len() + want_p.len()) as u64;
        // Leg 2: each side answers the other's request list.
        self.digest_deliver(&mut st, p, v, &want_v, t);
        self.digest_deliver(&mut st, v, p, &want_p, t);
        st.want_initiator = want_v;
        st.want_partner = want_p;
        self.digest_state = Some(st);
    }

    /// Rebuild `bloom` from `sender`'s window, then fill `want` with the
    /// live ids `receiver` is missing that probe positive, in round/slot
    /// order, stopping at `limit`.
    // lint: hot-loop
    fn bloom_wants(
        bloom: &mut BloomDigest,
        sender: &WindowSet,
        receiver: &WindowSet,
        t: Round,
        limit: usize,
        want: &mut Vec<UpdateId>,
    ) {
        want.clear();
        bloom.clear();
        let per_round = receiver.per_round();
        for r in sender.start()..=t {
            let mut bits = sender.mask(r).unwrap_or(0);
            while bits != 0 {
                let slot = bits.trailing_zeros();
                bits &= bits - 1;
                bloom.insert(pack_id(r, slot));
            }
        }
        for r in receiver.start()..=t {
            let held = receiver.mask(r).unwrap_or(0);
            for slot in 0..per_round {
                if held & (1u64 << slot) != 0 {
                    continue;
                }
                if want.len() >= limit {
                    return;
                }
                if bloom.contains(pack_id(r, slot)) {
                    want.push(UpdateId { round: r, slot });
                }
            }
        }
    }

    /// Transfer leg: `sender` answers `receiver`'s request list. A
    /// requested id the sender lacks is a bloom false positive (exact
    /// mode never produces one); a poisoning attacker withholds each
    /// *held* id at [`AttackPlan::poison_rate`] — the draw happens only
    /// for held ids, so the poison stream is advertisement-agnostic. The
    /// digest-audit defense samples every advertised-but-undelivered id
    /// at `audit` and files at most one silence strike per direction: to
    /// the receiver, a false positive and a withheld id are
    /// indistinguishable — exactly the attack's deniability claim, which
    /// is why the defense's collateral shows up as `false_cut_rate`.
    /// Whole-message loss of a non-empty delivery strikes as in the
    /// balanced phase (the want was mutual knowledge).
    // lint: hot-loop
    fn digest_deliver(
        &mut self,
        st: &mut DigestState,
        sender: NodeId,
        receiver: NodeId,
        want: &[UpdateId],
        t: Round,
    ) {
        let mut deliver = std::mem::take(&mut st.deliver);
        deliver.clear();
        let poisoner =
            self.attack_active && self.plan.kind == AttackKind::Poison && self.is_attacker(sender);
        let mut strike = false;
        for &id in want {
            if !self.windows[sender.index()].contains(id) {
                st.stats.fp_requests += 1;
                if !strike {
                    strike = st.audit_rng.chance(st.dcfg.audit);
                }
                continue;
            }
            if poisoner && st.poison_rng.chance(self.plan.poison_rate) {
                st.stats.withheld += 1;
                if !strike {
                    strike = st.audit_rng.chance(st.dcfg.audit);
                }
                continue;
            }
            deliver.push(id);
        }
        st.stats.bytes_updates += UPDATE_WIRE_BYTES * deliver.len() as u64;
        if !deliver.is_empty() {
            if self.faulty_send(sender, receiver, deliver.len() as u64, 0) {
                for &id in &deliver {
                    self.windows[receiver.index()].insert(id);
                }
            } else {
                self.note_silence(receiver, sender, t);
            }
        }
        if strike {
            self.note_silence(receiver, sender, t);
        }
        st.deliver = deliver;
    }

    /// Run the configured horizon and produce the report.
    pub fn run_to_report(mut self) -> BarGossipReport {
        let total = self.cfg.total_rounds();
        while self.round < total {
            let t = self.round;
            self.round(t);
        }
        self.report()
    }

    /// Snapshot the report for the rounds executed so far.
    pub fn report(&self) -> BarGossipReport {
        let frac = |ci: usize| -> f64 {
            if self.totals[ci] == 0 {
                0.0
            } else {
                self.delivered[ci] as f64 / self.totals[ci] as f64
            }
        };
        let honest_delivered = self.delivered[0] + self.delivered[1];
        let honest_total = self.totals[0] + self.totals[1];
        let counts = ClassCounts {
            isolated: self.class_counts[0] as u32,
            satiated: self.class_counts[1] as u32,
            attacker: self.class_counts[2] as u32,
        };
        let attacker_nodes = &self.attacker_list;
        let honest_nodes = &self.honest_list;
        // A node that never engaged (its arrival wave never landed)
        // delivered nothing in every measured round — exactly what its
        // empty dense window would have tallied.
        let unusable_rounds = |i: usize| {
            if self.engaged.contains(i) {
                self.node_unusable_rounds[i]
            } else {
                self.measured_rounds
            }
        };
        BarGossipReport {
            rounds: self.round,
            delivery: ClassDelivery {
                isolated: frac(0),
                satiated: frac(1),
                overall: if honest_total == 0 {
                    0.0
                } else {
                    honest_delivered as f64 / honest_total as f64
                },
            },
            attacker_coverage: if self.attacker_union_total == 0 {
                0.0
            } else {
                self.attacker_union_delivered as f64 / self.attacker_union_total as f64
            },
            counts,
            evictions: self.evictions,
            junk_fraction: self.meter.junk_fraction(),
            mean_attacker_upload: self
                .meter
                .mean_uploaded(attacker_nodes.iter().map(|&i| NodeId(i))),
            mean_honest_upload: self
                .meter
                .mean_uploaded(honest_nodes.iter().map(|&i| NodeId(i))),
            isolated_series: self.isolated_series.clone(),
            usability_threshold: self.cfg.usability_threshold,
            min_node_delivery: {
                let per_round_total =
                    u64::from(self.cfg.updates_per_round) * u64::from(self.measured_rounds);
                if per_round_total == 0 {
                    0.0
                } else {
                    honest_nodes
                        .iter()
                        .map(|&i| self.node_delivered[i as usize] as f64 / per_round_total as f64)
                        .fold(f64::INFINITY, f64::min)
                        .min(1.0)
                }
            },
            nodes_ever_unusable: {
                if honest_nodes.is_empty() {
                    0.0
                } else {
                    honest_nodes
                        .iter()
                        .filter(|&&i| unusable_rounds(i as usize) > 0)
                        .count() as f64
                        / honest_nodes.len() as f64
                }
            },
            unusable_node_rounds: {
                let samples = honest_nodes.len() as u64 * u64::from(self.measured_rounds);
                if samples == 0 {
                    0.0
                } else {
                    honest_nodes
                        .iter()
                        .map(|&i| u64::from(unusable_rounds(i as usize)))
                        .sum::<u64>() as f64
                        / samples as f64
                }
            },
            cuts: self.cfg.defenses.cutoff_quorum.map(|_| CutStats {
                cut_honest: self.cut_honest,
                cut_attacker: self.cut_attacker,
                honest: counts.isolated + counts.satiated,
                attackers: counts.attacker,
            }),
            fault_counters: if self.faults.is_active() {
                Some(self.faults.counters())
            } else {
                None
            },
            digest: self.digest_state.as_ref().map(|d| d.stats),
        }
    }
}

impl RoundSim for BarGossipSim {
    // lint: hot-loop
    fn round(&mut self, t: Round) {
        debug_assert_eq!(t, self.round, "rounds must be sequential");
        // Timing layer first: churn membership and faults, then the
        // schedule decides whether this round is a cooperate or defect
        // round. All are no-ops (no rng draws, no allocation) under the
        // default always-on, churn-free, fault-free configuration.
        self.population.begin_round(t);
        self.faults.begin_round(t);
        if !self.faults.just_crashed().is_empty() {
            // State-losing crash: unlike churned-out nodes, which keep
            // their windows while away, a crashed node re-enters cold.
            for i in self.faults.just_crashed().iter() {
                self.windows[i].clear();
            }
        }
        // Engage nodes whose arrival wave just landed: fast-forward
        // their windows into lockstep before anything slides. Inlined
        // (rather than calling `ensure_engaged`) so the scratch-mask
        // iteration and the window mutations borrow disjoint fields.
        self.mask_scratch.copy_from(self.population.present());
        self.mask_scratch.subtract(&self.engaged);
        if !self.mask_scratch.is_empty() {
            for i in self.mask_scratch.iter() {
                if t > 0 {
                    self.windows[i].skip_to(t - 1);
                }
                self.engaged.insert(i);
                self.node_unusable_rounds[i] = self.measured_rounds;
            }
        }
        // Rebuild the round's activity snapshot: active = present ∧
        // ¬down ∧ ¬evicted ∧ ¬cut, word-parallel. Nothing becomes
        // alive mid-round (evictions and cuts only remove), so the
        // snapshot is a superset of every `alive()` check below and the
        // shard walks see exactly the dense filter lists.
        self.mask_scratch.copy_from(self.population.present());
        self.mask_scratch.subtract(self.faults.down_mask());
        self.mask_scratch.subtract(&self.evicted);
        self.mask_scratch.subtract(&self.cut);
        self.shards.load(&self.mask_scratch);
        let observed = self
            .schedule_state
            .needs_observation()
            .and_then(|k| self.observe(k));
        self.attack_active = self.schedule_state.is_active(t, observed);
        self.account_attacker_coverage(t);
        self.rotate_targets(t);
        self.advance_windows(t);
        self.seed_round(t);
        // Observation 3.1 harness: fed nodes receive the new batch the
        // moment it is released — "sufficiently rapidly" taken literally.
        if !self.fed.is_empty() {
            for i in self.fed.iter() {
                self.windows[i].union_with(&self.full);
            }
            self.fed.clear();
        }
        self.ideal_forwarding();
        if self.digest_state.is_some() {
            // Digest mode: the two-leg exchange replaces both classic
            // phases (its diff already covers what pushes would carry).
            self.digest_phase(t);
        } else {
            self.balanced_phase(t);
            self.push_phase(t);
        }
        self.round = t + 1;
    }

    fn rounds_run(&self) -> Round {
        self.round
    }
}

impl lotus_core::satiation::Feedable for BarGossipSim {
    /// Hand the node every live update instantly, *including* the batch
    /// the broadcaster will release in the coming round (the attacker's
    /// power in the limit, as Observation 3.1 assumes).
    fn feed_fully(&mut self, node: NodeId) {
        // Feeding a node implies it exists in the system: engage it
        // first so its window is in lockstep before the union.
        self.ensure_engaged(node.index());
        self.windows[node.index()].union_with(&self.full);
        self.fed.insert(node.index());
    }

    fn step(&mut self) {
        let t = self.round;
        self.round(t);
    }
}

impl lotus_core::satiation::Satiable for BarGossipSim {
    fn node_count(&self) -> u32 {
        self.class.len() as u32
    }

    /// A node is satiated when it holds every live update.
    fn is_satiated(&self, node: NodeId) -> bool {
        if !self.engaged.contains(node.index()) {
            // A disengaged window is not in lockstep with `full`;
            // the node holds nothing, so it is satiated iff nothing
            // is live.
            return self.full.is_empty();
        }
        self.windows[node.index()].missing_from(&self.full) == 0
    }

    fn service_provided(&self, node: NodeId) -> u64 {
        self.meter.uploaded_class(node, MsgClass::Payload)
    }
}

impl lotus_core::scenario::Scenario for BarGossipSim {
    type Config = BarGossipConfig;
    type Attack = AttackPlan;
    type Report = BarGossipReport;
    const NAME: &'static str = "bar-gossip";

    fn build(cfg: BarGossipConfig, attack: AttackPlan, seed: u64) -> Self {
        BarGossipSim::new(cfg, attack, seed)
    }

    fn step(&mut self) -> lotus_core::scenario::StepOutcome {
        let total = self.cfg.total_rounds();
        if self.round >= total {
            return lotus_core::scenario::StepOutcome::Done;
        }
        let t = self.round;
        RoundSim::round(self, t);
        if self.round >= total {
            lotus_core::scenario::StepOutcome::Done
        } else {
            lotus_core::scenario::StepOutcome::Continue
        }
    }

    fn report(&self) -> BarGossipReport {
        BarGossipSim::report(self)
    }

    fn arm_trace(&self) -> Option<&[lotus_core::adaptive::TraceEntry]> {
        self.schedule_state.arm_trace()
    }
}

impl lotus_core::scenario::Summarize for BarGossipReport {
    /// Common vocabulary for BAR Gossip:
    ///
    /// * `overall_delivery` — delivery over all honest nodes;
    /// * `targeted_service` — delivery to the attacker's satiated set;
    /// * `usable` — isolated nodes clear the 93 % streaming bar (the
    ///   paper's y-axis lives on as the `isolated_delivery` metric).
    fn summarize(&self) -> lotus_core::scenario::ScenarioReport {
        let evicted_fraction = if self.counts.attacker == 0 {
            0.0
        } else {
            f64::from(self.evictions) / f64::from(self.counts.attacker)
        };
        // A digest run is its own registered scenario; the report knows
        // which round shape produced it.
        let name = if self.digest.is_some() {
            "bar-gossip-digest"
        } else {
            "bar-gossip"
        };
        let mut r = lotus_core::scenario::ScenarioReport::new(
            name,
            self.rounds,
            self.overall_delivery(),
            self.satiated_delivery(),
            self.isolated_usable(),
        )
        .with_metric("isolated_delivery", self.isolated_delivery())
        .with_metric("satiated_delivery", self.satiated_delivery())
        .with_metric("attacker_coverage", self.attacker_coverage)
        .with_metric("evictions", f64::from(self.evictions))
        .with_metric("evicted_fraction", evicted_fraction)
        .with_metric("junk_fraction", self.junk_fraction)
        .with_metric("mean_attacker_upload", self.mean_attacker_upload)
        .with_metric("mean_honest_upload", self.mean_honest_upload)
        .with_metric("min_node_delivery", self.min_node_delivery)
        .with_metric("nodes_ever_unusable", self.nodes_ever_unusable)
        .with_metric("unusable_node_rounds", self.unusable_node_rounds);
        // Defense- and fault-conditional metrics: absent from reports of
        // runs that configured neither, so pre-fault goldens stay
        // byte-identical.
        if let Some(c) = self.cuts {
            r = r
                .with_metric("false_cut_rate", c.false_cut_rate())
                .with_metric("attacker_cut_rate", c.attacker_cut_rate())
                .with_metric("cut_precision", c.precision())
                .with_metric("cut_recall", c.attacker_cut_rate());
        }
        if let Some(f) = self.fault_counters {
            r = r
                .with_metric("faults_dropped", f.dropped as f64)
                .with_metric("faults_duplicated", f.duplicated as f64)
                .with_metric("faults_delayed", f.delayed as f64)
                .with_metric("faults_crashes", f.crashes as f64)
                .with_metric("faults_partition_blocked", f.partition_blocked as f64);
        }
        if let Some(d) = self.digest {
            r = r
                .with_metric("digest_bytes_on_wire", d.bytes_on_wire() as f64)
                .with_metric("digest_bytes_updates", d.bytes_updates as f64)
                .with_metric("digest_fp_rate", d.fp_rate())
                .with_metric("digest_requests", d.requests as f64)
                .with_metric("digest_withheld", d.withheld as f64);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_core::satiation::Satiable;

    fn small_cfg() -> BarGossipConfig {
        BarGossipConfig::builder()
            .nodes(60)
            .updates_per_round(4)
            .update_lifetime(8)
            .copies_seeded(6)
            .rounds(20)
            .warmup_rounds(8)
            .build()
            .unwrap()
    }

    #[test]
    fn healthy_system_delivers_nearly_everything() {
        let report = BarGossipSim::new(small_cfg(), AttackPlan::none(), 1).run_to_report();
        assert!(
            report.overall_delivery() > 0.95,
            "unattacked delivery was {}",
            report.overall_delivery()
        );
        assert_eq!(report.counts.attacker, 0);
        assert_eq!(report.counts.satiated, 0);
        assert!(report.isolated_usable());
        assert_eq!(report.evictions, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = BarGossipSim::new(small_cfg(), AttackPlan::crash(0.2), 5).run_to_report();
        let b = BarGossipSim::new(small_cfg(), AttackPlan::crash(0.2), 5).run_to_report();
        assert_eq!(a, b);
        let c = BarGossipSim::new(small_cfg(), AttackPlan::crash(0.2), 6).run_to_report();
        assert_ne!(a.delivery, c.delivery);
    }

    #[test]
    fn crash_attack_degrades_delivery_monotonically_ish() {
        let d0 = BarGossipSim::new(small_cfg(), AttackPlan::none(), 3)
            .run_to_report()
            .overall_delivery();
        let d50 = BarGossipSim::new(small_cfg(), AttackPlan::crash(0.5), 3)
            .run_to_report()
            .isolated_delivery();
        let d90 = BarGossipSim::new(small_cfg(), AttackPlan::crash(0.9), 3)
            .run_to_report()
            .isolated_delivery();
        assert!(d50 < d0, "50% crash must hurt: {d50} vs {d0}");
        assert!(d90 < d50, "90% crash must hurt more: {d90} vs {d50}");
        assert!(d90 < 0.5, "90% crash should cripple the system");
    }

    #[test]
    fn trade_attack_starves_isolated_and_feeds_satiated() {
        let report = BarGossipSim::new(small_cfg(), AttackPlan::trade_lotus_eater(0.3, 0.7), 4)
            .run_to_report();
        assert!(
            report.satiated_delivery() > 0.9,
            "satiated nodes get near-perfect service, got {}",
            report.satiated_delivery()
        );
        assert!(
            report.isolated_delivery() < report.satiated_delivery(),
            "isolated starve relative to satiated"
        );
        assert!(
            report.mean_attacker_upload > 0.0,
            "trade attack costs bandwidth"
        );
    }

    #[test]
    fn ideal_attack_beats_trade_when_attacker_is_small() {
        // The ideal attack's edge is at *low* attacker fractions: the trade
        // attacker is starved of scheduled interactions while the ideal
        // attacker forwards out-of-band to everyone (paper Figure 1: ideal
        // breaks the system at ~4%, trade needs ~22%).
        let ideal = BarGossipSim::new(small_cfg(), AttackPlan::ideal_lotus_eater(0.05, 0.7), 4)
            .run_to_report();
        let trade = BarGossipSim::new(small_cfg(), AttackPlan::trade_lotus_eater(0.05, 0.7), 4)
            .run_to_report();
        assert!(
            ideal.isolated_delivery() <= trade.isolated_delivery() + 0.02,
            "ideal ({}) should hit at least as hard as trade ({}) at 5%",
            ideal.isolated_delivery(),
            trade.isolated_delivery()
        );
    }

    #[test]
    fn ideal_attacker_holds_partial_coverage() {
        let report = BarGossipSim::new(small_cfg(), AttackPlan::ideal_lotus_eater(0.05, 0.7), 2)
            .run_to_report();
        assert!(
            report.attacker_coverage > 0.05 && report.attacker_coverage < 0.9,
            "a small attacker holds partial coverage, got {}",
            report.attacker_coverage
        );
    }

    #[test]
    fn crash_attack_needs_no_bandwidth() {
        let report = BarGossipSim::new(small_cfg(), AttackPlan::crash(0.3), 2).run_to_report();
        assert_eq!(report.mean_attacker_upload, 0.0);
        assert_eq!(
            report.attacker_coverage, 0.0,
            "crash attack has no coverage metric"
        );
    }

    #[test]
    fn satiable_interface_reports_satiated_nodes() {
        let mut sim = BarGossipSim::new(small_cfg(), AttackPlan::ideal_lotus_eater(0.2, 0.7), 9);
        for t in 0..20 {
            sim.round(t);
        }
        // Some satiated-class node should hold every live update.
        let n = sim.node_count();
        let full_holders = NodeId::all(n)
            .filter(|&v| sim.class_of(v) == NodeClass::Satiated && sim.is_satiated(v))
            .count();
        assert!(full_holders > 0, "ideal attack satiates targets");
    }

    #[test]
    fn report_defense_evicts_trade_attackers() {
        let cfg = BarGossipConfig::builder()
            .nodes(60)
            .updates_per_round(4)
            .update_lifetime(8)
            .copies_seeded(6)
            .rounds(20)
            .warmup_rounds(8)
            .report_defense(crate::config::ReportConfig {
                obedient_fraction: 1.0,
                quorum: 2,
                excess_slack: 1,
            })
            .build()
            .unwrap();
        let report =
            BarGossipSim::new(cfg, AttackPlan::trade_lotus_eater(0.2, 0.7), 3).run_to_report();
        assert!(report.evictions > 0, "attackers should be evicted");
    }

    #[test]
    fn report_defense_never_evicts_honest_nodes() {
        let cfg = BarGossipConfig::builder()
            .nodes(50)
            .updates_per_round(4)
            .update_lifetime(8)
            .copies_seeded(6)
            .rounds(15)
            .warmup_rounds(8)
            .unbalanced_exchanges(true)
            .report_defense(crate::config::ReportConfig {
                obedient_fraction: 1.0,
                quorum: 1,
                excess_slack: 1,
            })
            .build()
            .unwrap();
        let report = BarGossipSim::new(cfg, AttackPlan::none(), 3).run_to_report();
        assert_eq!(
            report.evictions, 0,
            "honest protocol traffic is never excessive"
        );
    }

    #[test]
    fn rate_limit_blunts_trade_attack() {
        let attack = AttackPlan::trade_lotus_eater(0.25, 0.7);
        let open = BarGossipSim::new(small_cfg(), attack, 6).run_to_report();
        let mut limited_cfg = small_cfg();
        limited_cfg.defenses.rate_limit = Some(2);
        let limited = BarGossipSim::new(limited_cfg, attack, 6).run_to_report();
        assert!(
            limited.isolated_delivery() >= open.isolated_delivery() - 0.02,
            "rate limiting should not make isolated nodes worse off: {} vs {}",
            limited.isolated_delivery(),
            open.isolated_delivery()
        );
        assert!(
            limited.satiated_delivery() <= open.satiated_delivery() + 1e-9,
            "rate limiting slows satiation"
        );
    }

    #[test]
    fn series_covers_measured_rounds() {
        let cfg = small_cfg();
        let expected = cfg.rounds as usize;
        let report = BarGossipSim::new(cfg, AttackPlan::none(), 1).run_to_report();
        assert_eq!(report.isolated_series.len(), expected);
        for (r, frac) in &report.isolated_series {
            assert!(*frac >= 0.0 && *frac <= 1.0);
            assert!(*r >= 8, "warmup rounds excluded");
        }
    }

    #[test]
    fn trace_records_attack_events() {
        let mut sim = BarGossipSim::new(small_cfg(), AttackPlan::trade_lotus_eater(0.3, 0.7), 8);
        sim.enable_trace(10_000);
        for t in 0..10 {
            sim.round(t);
        }
        assert!(sim.trace().of_kind(EventKind::Attack).count() > 0);
    }

    #[test]
    fn attacker_receives_flag_controls_pool_growth() {
        let mut cfg = small_cfg();
        cfg.attacker_receives = false;
        let no_recv =
            BarGossipSim::new(cfg, AttackPlan::trade_lotus_eater(0.2, 0.7), 5).run_to_report();
        let recv = BarGossipSim::new(small_cfg(), AttackPlan::trade_lotus_eater(0.2, 0.7), 5)
            .run_to_report();
        assert!(
            recv.attacker_coverage >= no_recv.attacker_coverage,
            "receiving can only grow attacker coverage: {} vs {}",
            recv.attacker_coverage,
            no_recv.attacker_coverage
        );
    }

    #[test]
    fn slow_rotation_spreads_the_pain() {
        // Rotation periods comparable to the update lifetime spread the
        // outage across the population (X11). Fast rotation backfires:
        // the attacker refills rotated-in nodes before their missed
        // updates expire, effectively healing them.
        let static_plan = AttackPlan::trade_lotus_eater(0.3, 0.7);
        let rotating = static_plan.with_rotation(16); // 2x the lifetime
        let fixed = BarGossipSim::new(small_cfg(), static_plan, 12).run_to_report();
        let rotated = BarGossipSim::new(small_cfg(), rotating, 12).run_to_report();
        assert!(
            rotated.nodes_ever_unusable >= fixed.nodes_ever_unusable,
            "slow rotation must touch at least as many nodes: {} vs {}",
            rotated.nodes_ever_unusable,
            fixed.nodes_ever_unusable
        );
    }

    #[test]
    fn per_node_metrics_are_sane() {
        let report = BarGossipSim::new(small_cfg(), AttackPlan::trade_lotus_eater(0.3, 0.7), 3)
            .run_to_report();
        assert!(report.min_node_delivery >= 0.0 && report.min_node_delivery <= 1.0);
        assert!(report.min_node_delivery <= report.overall_delivery() + 1e-9);
        assert!(report.nodes_ever_unusable >= 0.0 && report.nodes_ever_unusable <= 1.0);
        assert!(
            report.unusable_node_rounds <= report.nodes_ever_unusable + 1e-9,
            "a node-round sample fraction cannot exceed the ever-unusable fraction"
        );
    }

    #[test]
    fn clean_run_has_no_unusable_nodes() {
        let report = BarGossipSim::new(small_cfg(), AttackPlan::none(), 2).run_to_report();
        assert!(
            report.unusable_node_rounds < 0.2,
            "healthy system rarely dips below threshold, got {}",
            report.unusable_node_rounds
        );
        assert!(report.min_node_delivery > 0.8);
    }

    #[test]
    fn zero_rate_fault_plan_is_report_invisible() {
        // An explicitly configured all-zero plan must leave every report
        // field byte-identical to the default (no fault layer at all).
        let mut cfg = small_cfg();
        cfg.faults = lotus_core::faults::FaultPlan::parse("loss:0/crash:0:0.5").unwrap();
        let faulted =
            BarGossipSim::new(cfg, AttackPlan::trade_lotus_eater(0.2, 0.7), 5).run_to_report();
        let plain = BarGossipSim::new(small_cfg(), AttackPlan::trade_lotus_eater(0.2, 0.7), 5)
            .run_to_report();
        assert_eq!(faulted, plain);
        assert!(faulted.fault_counters.is_none());
        assert!(faulted.cuts.is_none());
    }

    #[test]
    fn message_loss_degrades_delivery() {
        let mut cfg = small_cfg();
        cfg.faults = lotus_core::faults::FaultPlan::parse("loss:0.4").unwrap();
        let lossy = BarGossipSim::new(cfg, AttackPlan::none(), 3).run_to_report();
        let clean = BarGossipSim::new(small_cfg(), AttackPlan::none(), 3).run_to_report();
        assert!(
            lossy.overall_delivery() < clean.overall_delivery(),
            "40% loss must hurt: {} vs {}",
            lossy.overall_delivery(),
            clean.overall_delivery()
        );
        let counters = lossy.fault_counters.expect("active plan reports counters");
        assert!(counters.dropped > 0);
    }

    #[test]
    fn crashes_lose_state_and_count() {
        let mut cfg = small_cfg();
        cfg.faults = lotus_core::faults::FaultPlan::parse("crash:0.05:0.3").unwrap();
        let crashy = BarGossipSim::new(cfg, AttackPlan::none(), 7).run_to_report();
        let clean = BarGossipSim::new(small_cfg(), AttackPlan::none(), 7).run_to_report();
        let counters = crashy.fault_counters.expect("active plan reports counters");
        assert!(counters.crashes > 0, "5% per round crashes someone");
        assert!(
            crashy.overall_delivery() < clean.overall_delivery(),
            "cold re-entry costs delivery: {} vs {}",
            crashy.overall_delivery(),
            clean.overall_delivery()
        );
    }

    #[test]
    fn partition_blocks_interactions_for_its_epoch() {
        let mut cfg = small_cfg();
        cfg.faults = lotus_core::faults::FaultPlan::parse("partition:10:10:0.5").unwrap();
        let split = BarGossipSim::new(cfg, AttackPlan::none(), 2).run_to_report();
        let counters = split.fault_counters.expect("active plan reports counters");
        assert!(counters.partition_blocked > 0, "cross-cell pairs blocked");
    }

    #[test]
    fn masquerade_is_honest_on_a_perfect_network() {
        let report = BarGossipSim::new(small_cfg(), AttackPlan::masquerade(0.2), 4).run_to_report();
        assert!(
            report.overall_delivery() > 0.95,
            "no ambient faults, nothing to hide behind: delivery {}",
            report.overall_delivery()
        );
    }

    #[test]
    fn masquerade_defects_at_the_ambient_rate() {
        let mut cfg = small_cfg();
        cfg.faults = lotus_core::faults::FaultPlan::parse("loss:0.2").unwrap();
        let attacked =
            BarGossipSim::new(cfg.clone(), AttackPlan::masquerade(0.3), 4).run_to_report();
        let unattacked = BarGossipSim::new(cfg, AttackPlan::none(), 4).run_to_report();
        assert!(
            attacked.overall_delivery() < unattacked.overall_delivery(),
            "masquerade defection compounds the ambient loss: {} vs {}",
            attacked.overall_delivery(),
            unattacked.overall_delivery()
        );
    }

    #[test]
    fn cutoff_never_cuts_anyone_on_a_perfect_network() {
        // Without faults silence never happens among honest nodes, so
        // the defense is surgical: zero cuts with no attack.
        let cfg = BarGossipConfig::builder()
            .nodes(60)
            .updates_per_round(4)
            .update_lifetime(8)
            .copies_seeded(6)
            .rounds(20)
            .warmup_rounds(8)
            .cutoff_quorum(Some(2))
            .build()
            .unwrap();
        let report = BarGossipSim::new(cfg, AttackPlan::none(), 6).run_to_report();
        let cuts = report.cuts.expect("cutoff defense reports cut stats");
        assert_eq!((cuts.cut_honest, cuts.cut_attacker), (0, 0));
        assert_eq!(cuts.precision(), 1.0, "vacuous precision");
    }

    #[test]
    fn cutoff_under_loss_cuts_honest_nodes() {
        // The robustness trade-off: ambient loss makes honest nodes look
        // silent, so a quorum-2 cutoff racks up false positives.
        let cfg = BarGossipConfig::builder()
            .nodes(60)
            .updates_per_round(4)
            .update_lifetime(8)
            .copies_seeded(6)
            .rounds(20)
            .warmup_rounds(8)
            .cutoff_quorum(Some(2))
            .faults(lotus_core::faults::FaultPlan::parse("loss:0.3").unwrap())
            .build()
            .unwrap();
        let report = BarGossipSim::new(cfg, AttackPlan::none(), 6).run_to_report();
        let cuts = report.cuts.expect("cutoff defense reports cut stats");
        assert!(cuts.cut_honest > 0, "loss-induced silence gets punished");
        assert!(cuts.false_cut_rate() > 0.0);
    }

    #[test]
    fn responder_cap_bounds_incoming_service() {
        // With a cap of 1 an honest node serves at most one incoming
        // balanced exchange per round; with no cap it may serve several.
        let mut capped_cfg = small_cfg();
        capped_cfg.responder_cap = Some(1);
        let mut open_cfg = small_cfg();
        open_cfg.responder_cap = None;
        let capped = BarGossipSim::new(capped_cfg, AttackPlan::none(), 11).run_to_report();
        let open = BarGossipSim::new(open_cfg, AttackPlan::none(), 11).run_to_report();
        assert!(
            open.mean_honest_upload >= capped.mean_honest_upload,
            "uncapped responders serve at least as much: {} vs {}",
            open.mean_honest_upload,
            capped.mean_honest_upload
        );
    }

    fn digest_cfg(dcfg: DigestExchangeConfig) -> BarGossipConfig {
        let mut cfg = small_cfg();
        cfg.digest = Some(dcfg);
        cfg
    }

    #[test]
    fn truthful_digest_exchange_delivers_nearly_everything() {
        let report = BarGossipSim::new(
            digest_cfg(DigestExchangeConfig::default()),
            AttackPlan::none(),
            1,
        )
        .run_to_report();
        assert!(
            report.overall_delivery() > 0.95,
            "digest-round delivery was {}",
            report.overall_delivery()
        );
        let d = report.digest.expect("digest runs report wire stats");
        assert!(d.bytes_digests > 0 && d.bytes_updates > 0);
        assert_eq!(d.withheld, 0, "nobody withholds without a poisoner");
        assert!(d.fp_rate() < 0.05, "default 1024-bit digest stays sharp");
    }

    #[test]
    fn bloom_and_exact_digests_deliver_identically() {
        // The sim-level cut of the keystone golden: wire accounting
        // differs by mode, delivery must not (no false negatives, and
        // a false positive only ever wastes a request).
        let bloom = BarGossipSim::new(
            digest_cfg(DigestExchangeConfig::default()),
            AttackPlan::poison(0.3, 1.0),
            9,
        )
        .run_to_report();
        let exact = BarGossipSim::new(
            digest_cfg(DigestExchangeConfig {
                exact: true,
                ..DigestExchangeConfig::default()
            }),
            AttackPlan::poison(0.3, 1.0),
            9,
        )
        .run_to_report();
        let mut b = bloom.clone();
        let mut e = exact.clone();
        b.digest = None;
        e.digest = None;
        assert_eq!(b, e, "delivery must be advertisement-agnostic");
        let exact_stats = exact.digest.unwrap();
        assert_eq!(exact_stats.fp_requests, 0, "exact diffs cannot miss");
        assert_eq!(
            bloom.digest.unwrap().withheld,
            exact_stats.withheld,
            "the poison stream must draw identically in both modes"
        );
    }

    #[test]
    fn poison_attack_starves_via_withholding_only() {
        let honest = BarGossipSim::new(
            digest_cfg(DigestExchangeConfig::default()),
            AttackPlan::poison(0.3, 0.0),
            7,
        )
        .run_to_report();
        let full = BarGossipSim::new(
            digest_cfg(DigestExchangeConfig::default()),
            AttackPlan::poison(0.3, 1.0),
            7,
        )
        .run_to_report();
        assert_eq!(honest.digest.unwrap().withheld, 0, "rate 0 poisons nothing");
        assert!(honest.overall_delivery() > 0.9);
        assert!(full.digest.unwrap().withheld > 0);
        assert!(
            full.isolated_delivery() < honest.isolated_delivery(),
            "full-rate withholding must hurt: {} vs {}",
            full.isolated_delivery(),
            honest.isolated_delivery()
        );
    }

    #[test]
    fn digest_audit_cuts_poisoners() {
        let mut cfg = digest_cfg(DigestExchangeConfig {
            audit: 0.5,
            ..DigestExchangeConfig::default()
        });
        cfg.defenses.cutoff_quorum = Some(2);
        let report = BarGossipSim::new(cfg, AttackPlan::poison(0.3, 1.0), 5).run_to_report();
        let cuts = report.cuts.expect("cutoff defense reports cut stats");
        assert!(
            cuts.attacker_cut_rate() > 0.5,
            "auditing advertised-but-undelivered ids catches full-rate \
             poisoners: cut rate {}",
            cuts.attacker_cut_rate()
        );
    }

    #[test]
    fn digest_runs_are_deterministic_and_config_is_inert_elsewhere() {
        let a = BarGossipSim::new(
            digest_cfg(DigestExchangeConfig::default()),
            AttackPlan::poison(0.2, 0.6),
            3,
        )
        .run_to_report();
        let b = BarGossipSim::new(
            digest_cfg(DigestExchangeConfig::default()),
            AttackPlan::poison(0.2, 0.6),
            3,
        )
        .run_to_report();
        assert_eq!(a, b);
        // A classic run carries no digest stats at all.
        let classic = BarGossipSim::new(small_cfg(), AttackPlan::none(), 3).run_to_report();
        assert!(classic.digest.is_none());
    }
}
