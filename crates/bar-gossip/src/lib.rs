//! `bar-gossip` — a round-based BAR Gossip simulator with lotus-eater
//! attacks and defenses.
//!
//! This crate reimplements the gossip layer of BAR Gossip (Li, Clement,
//! Wong, Napper, Roy, Alvisi, Dahlin; OSDI 2006) as evaluated in §2 of
//! *The Lotus-Eater Attack*:
//!
//! * a broadcaster releases a batch of updates each round and seeds each
//!   to a few random nodes ([`config::BarGossipConfig`] defaults to the
//!   paper's Table 1 parameters);
//! * nodes spread updates through **balanced exchanges** (strict
//!   one-for-one) and **optimistic pushes** (recent updates for old
//!   updates or junk) with pseudorandomly assigned partners
//!   ([`exchange`]);
//! * updates expire after a lifetime; delivery-before-expiry is the
//!   usability metric (a node needs > 93 % for the stream to be usable).
//!
//! The three attacks of the paper's Figure 1 are provided by
//! [`AttackPlan`]: the **crash** baseline, the **ideal lotus-eater**
//! (out-of-band instant forwarding) and the **trade lotus-eater**
//! (in-protocol give-everything). The §2/§4 defenses are in
//! [`DefenseSuite`]: larger pushes (Figure 2), unbalanced exchanges
//! (Figure 3), per-exchange rate limits and report-and-evict.
//!
//! A digest-based substrate ([`DigestExchangeConfig`], the
//! `bar-gossip-digest` scenario) swaps the full-window round for a
//! two-leg advertise-then-diff exchange over
//! [`lotus_core::digest`] bloom filters (or exact region hashes). It
//! hosts the **advertise-then-withhold** attack
//! ([`AttackKind::Poison`]): a covert attacker advertises truthfully
//! and then withholds requested updates at a tunable rate, hiding
//! behind the digest's own false positives — plus the digest-audit
//! defense that samples advertised-but-undelivered ids.
//!
//! # Example
//!
//! ```
//! use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim};
//!
//! let cfg = BarGossipConfig::builder()
//!     .nodes(80)
//!     .updates_per_round(4)
//!     .copies_seeded(6)
//!     .rounds(20)
//!     .build()?;
//!
//! // The paper's headline attack: satiate 70% of the system.
//! let attack = AttackPlan::trade_lotus_eater(0.25, 0.70);
//! let report = BarGossipSim::new(cfg, attack, 42).run_to_report();
//!
//! // Satiated nodes receive near-perfect service; isolated nodes suffer.
//! assert!(report.satiated_delivery() >= report.isolated_delivery());
//! # Ok::<(), bar_gossip::config::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod config;
pub mod exchange;
pub mod scrip_gossip;
pub mod sim;
pub mod update;

pub use attack::{AttackKind, AttackPlan};
pub use config::{BarGossipConfig, DefenseSuite, DigestExchangeConfig, ReportConfig};
pub use scrip_gossip::{ScripGossipConfig, ScripGossipReport, ScripGossipSim};
pub use sim::{BarGossipReport, BarGossipSim, ClassCounts, ClassDelivery, DigestStats, NodeClass};
