//! Simulation parameters (Table 1) and the defense suite.
//!
//! The defaults reproduce Table 1 of the paper exactly:
//!
//! | Parameter            | Value |
//! |----------------------|-------|
//! | Number of Nodes      | 250   |
//! | Updates per Round    | 10    |
//! | Update Lifetime (rds)| 10    |
//! | Copies Seeded        | 12    |
//! | Opt. Push Size (upd) | 2     |
//!
//! plus the evaluation's usability rule (a node finds the stream usable if
//! it receives more than 93 % of updates) and the defense knobs §2 and §4
//! explore (push size, unbalanced exchanges, rate limiting,
//! report-and-evict).

use crate::update::MAX_UPDATES_PER_ROUND;
use lotus_core::faults::FaultPlan;
use lotus_core::population::{ArrivalProcess, ChurnProfile};

/// Report-and-evict defense settings (§4 "leveraging obedience").
///
/// Obedient nodes report peers that hand them excessive service; a quorum
/// of distinct reporters gets the peer evicted, using signed exchange
/// records as evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportConfig {
    /// Fraction of honest nodes that are obedient (follow the reporting
    /// protocol even though reporting is against their interest).
    pub obedient_fraction: f64,
    /// Distinct reporters required to evict a node.
    pub quorum: u32,
    /// How many updates a peer may give beyond what it receives before the
    /// interaction counts as excessive service (1 tolerates the unbalanced
    /// exchange defense).
    pub excess_slack: u32,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            obedient_fraction: 0.5,
            quorum: 3,
            excess_slack: 1,
        }
    }
}

/// The defenses in force during a run. [`DefenseSuite::default`] disables
/// all of them (the paper's baseline configuration).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DefenseSuite {
    /// Obedient nodes give one extra update in balanced exchanges when
    /// they receive at least one (Figure 3).
    pub unbalanced_exchanges: bool,
    /// Protocol-enforced cap on useful updates any node may hand a single
    /// peer per interaction (§5 open problem; experiment X9).
    pub rate_limit: Option<u32>,
    /// Report-and-evict excessive service (experiment X8).
    pub report: Option<ReportConfig>,
    /// Silence cut-off: when a present scheduled partner delivers
    /// nothing while the initiator wanted something, the initiator files
    /// a silence strike; this many *distinct* accusers get the partner
    /// cut from the protocol (`None`/0 = off). On a perfect network
    /// silence is always defection and this defense is surgical; under
    /// ambient faults it must trade false positives against letting
    /// masquerading defectors hide — the X19 robustness axis.
    pub cutoff_quorum: Option<u32>,
}

/// Digest-first exchange: peers swap summaries of what they hold, then
/// transfer only the diff (the `bar-gossip-digest` scenario).
///
/// `None` on [`BarGossipConfig::digest`] keeps the classic full-window
/// balanced-exchange + optimistic-push round; `Some` replaces both
/// phases with the two-leg digest round. Bandwidth then scales with the
/// diff — and withholding becomes undetectable until the transfer leg,
/// which is the surface the advertise-then-withhold
/// ([`AttackKind::Poison`](crate::attack::AttackKind::Poison)) attack
/// exploits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigestExchangeConfig {
    /// Bloom filter width in bits (`digest_bits`; also the digest's
    /// on-wire size, `bits/8` bytes per advertisement).
    pub bits: u32,
    /// Bloom probes per update id (`digest_hashes`).
    pub hashes: u32,
    /// Use the exact per-region summary-hash variant instead of the
    /// bloom filter (`digest_exact`): zero false positives, so an
    /// advertised-but-undelivered id is *proof* of withholding and the
    /// digest audit has perfect precision — at the cost of shipping a
    /// region hash per live round plus raw masks for divergent regions.
    pub exact: bool,
    /// Digest-audit defense: the probability the receiver checks each
    /// advertised-but-undelivered id it observes and files a silence
    /// strike on the sender (through the
    /// [`DefenseSuite::cutoff_quorum`] machinery; `0.0` = audit off).
    /// With a bloom digest, false positives make honest senders audit
    /// targets too — the deniability floor the poisoner hides under.
    pub audit: f64,
}

impl Default for DigestExchangeConfig {
    fn default() -> Self {
        DigestExchangeConfig {
            bits: 1024,
            hashes: 4,
            exact: false,
            audit: 0.0,
        }
    }
}

/// Full configuration of a BAR Gossip run.
///
/// Construct via [`BarGossipConfig::builder`]; [`Default`] gives Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct BarGossipConfig {
    /// Total nodes in the system (Table 1: 250).
    pub nodes: u32,
    /// Updates released by the broadcaster each round (Table 1: 10).
    pub updates_per_round: u32,
    /// Rounds an update stays useful after release (Table 1: 10).
    pub update_lifetime: u32,
    /// Nodes each fresh update is seeded to (Table 1: 12).
    pub copies_seeded: u32,
    /// Maximum updates transferred to the responder of an optimistic push
    /// (Table 1: 2; Figure 2 raises it to 10, Figure 3 tries 4).
    pub push_size: u32,
    /// Release rounds measured for delivery (after warm-up).
    pub rounds: u32,
    /// Warm-up release rounds excluded from measurement.
    pub warmup_rounds: u32,
    /// Usability threshold on delivered fraction (paper: 0.93).
    pub usability_threshold: f64,
    /// Minimum age (rounds) for an update to count as "old" — i.e.
    /// expiring soon, requestable through an optimistic push.
    pub old_age: u32,
    /// Maximum age for an update to count as "recently released" — i.e.
    /// offerable in an optimistic push.
    pub recent_age: u32,
    /// Defenses in force.
    pub defenses: DefenseSuite,
    /// Whether trade-attack nodes also accept updates offered back to them
    /// during exchanges (harvesting reciprocation to grow their holdings).
    /// Off by default — the paper's trade attacker forwards what it was
    /// seeded (plus in-protocol attacker-attacker sync); turning this on
    /// strengthens the attack markedly (see the `ablation` bench).
    pub attacker_receives: bool,
    /// Maximum incoming interactions an honest node serves per protocol
    /// per round (`None` = unbounded). BAR Gossip bounds per-round
    /// exchanges to limit the damage Byzantine nodes can do; the paper's
    /// §4 discusses this as the trade-opportunity parameter `c`.
    pub responder_cap: Option<u32>,
    /// Population churn: per-round node departure/return rates, possibly
    /// heterogeneous across cohorts (none by default — the paper's
    /// closed population; a uniform
    /// [`ChurnSpec`](lotus_core::population::ChurnSpec) converts to the
    /// degenerate one-class profile). Absent nodes neither initiate nor
    /// respond and receive no seeds, but keep their windows and rejoin
    /// where they left off.
    pub churn: ChurnProfile,
    /// Flash-crowd arrival process: held-back nodes enter with empty
    /// windows at their wave's round, having never gossiped (default:
    /// none). Attacker nodes are never held back — a flash crowd is an
    /// honest-node phenomenon.
    pub arrival: ArrivalProcess,
    /// Fault injection: message loss/duplication/delay, state-losing
    /// crashes and an epoch partition (default:
    /// [`FaultPlan::none`] — the paper's perfect network). Crashed
    /// nodes re-enter cold, with empty windows — unlike churned-out
    /// nodes, which keep their state while absent.
    pub faults: FaultPlan,
    /// Digest-first exchange (default `None`: the classic full-window
    /// round). See [`DigestExchangeConfig`].
    pub digest: Option<DigestExchangeConfig>,
    /// Worker threads for the intra-round exchange-plan phase (`0` =
    /// auto: the `LOTUS_RUN_THREADS` env var if set, else the machine's
    /// available parallelism). Only the read-only plan fill is
    /// partitioned; shards fold back in ascending order and apply runs
    /// sequentially, so every figure is byte-identical for any value.
    pub run_threads: usize,
}

impl Default for BarGossipConfig {
    fn default() -> Self {
        BarGossipConfig {
            nodes: 250,
            updates_per_round: 10,
            update_lifetime: 10,
            copies_seeded: 12,
            push_size: 2,
            rounds: 40,
            warmup_rounds: 10,
            usability_threshold: 0.93,
            old_age: 2,
            recent_age: 1,
            defenses: DefenseSuite::default(),
            attacker_receives: false,
            responder_cap: Some(2),
            churn: ChurnProfile::none(),
            arrival: ArrivalProcess::None,
            faults: FaultPlan::none(),
            digest: None,
            run_threads: 0,
        }
    }
}

/// Errors from [`BarGossipConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Fewer than three nodes (broadcast gossip needs a population).
    TooFewNodes(u32),
    /// `updates_per_round` outside `1..=64`.
    BadBatch(u32),
    /// `update_lifetime` was zero.
    ZeroLifetime,
    /// `copies_seeded` was zero or exceeded the node count.
    BadSeeding(u32),
    /// `push_size` was zero (the protocol requires pushes to carry data).
    ZeroPushSize,
    /// No measurement rounds.
    ZeroRounds,
    /// Usability threshold outside `(0, 1)`.
    BadThreshold(f64),
    /// `old_age`/`recent_age` incompatible with the lifetime.
    BadAgeBands(String),
    /// Report defense fractions out of range.
    BadReportConfig(String),
    /// Digest exchange parameters out of range.
    BadDigest(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooFewNodes(n) => write!(f, "need at least 3 nodes, got {n}"),
            ConfigError::BadBatch(b) => {
                write!(
                    f,
                    "updates per round must be 1..={MAX_UPDATES_PER_ROUND}, got {b}"
                )
            }
            ConfigError::ZeroLifetime => write!(f, "update lifetime must be positive"),
            ConfigError::BadSeeding(c) => write!(f, "copies seeded {c} out of range"),
            ConfigError::ZeroPushSize => write!(f, "push size must be positive"),
            ConfigError::ZeroRounds => write!(f, "need at least one measured round"),
            ConfigError::BadThreshold(t) => write!(f, "usability threshold {t} outside (0, 1)"),
            ConfigError::BadAgeBands(why) => write!(f, "bad age bands: {why}"),
            ConfigError::BadReportConfig(why) => write!(f, "bad report config: {why}"),
            ConfigError::BadDigest(why) => write!(f, "bad digest config: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl BarGossipConfig {
    /// Start building from the Table 1 defaults.
    pub fn builder() -> BarGossipConfigBuilder {
        BarGossipConfigBuilder {
            cfg: BarGossipConfig::default(),
        }
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes < 3 {
            return Err(ConfigError::TooFewNodes(self.nodes));
        }
        if self.updates_per_round == 0 || self.updates_per_round > MAX_UPDATES_PER_ROUND {
            return Err(ConfigError::BadBatch(self.updates_per_round));
        }
        if self.update_lifetime == 0 {
            return Err(ConfigError::ZeroLifetime);
        }
        if self.copies_seeded == 0 || self.copies_seeded > self.nodes {
            return Err(ConfigError::BadSeeding(self.copies_seeded));
        }
        if self.push_size == 0 {
            return Err(ConfigError::ZeroPushSize);
        }
        if self.rounds == 0 {
            return Err(ConfigError::ZeroRounds);
        }
        if !(self.usability_threshold > 0.0 && self.usability_threshold < 1.0) {
            return Err(ConfigError::BadThreshold(self.usability_threshold));
        }
        if self.old_age >= self.update_lifetime {
            return Err(ConfigError::BadAgeBands(format!(
                "old_age {} must be < lifetime {}",
                self.old_age, self.update_lifetime
            )));
        }
        if self.recent_age >= self.old_age {
            return Err(ConfigError::BadAgeBands(format!(
                "recent_age {} must be < old_age {}",
                self.recent_age, self.old_age
            )));
        }
        if let Some(report) = &self.defenses.report {
            if !(0.0..=1.0).contains(&report.obedient_fraction) {
                return Err(ConfigError::BadReportConfig(format!(
                    "obedient fraction {}",
                    report.obedient_fraction
                )));
            }
            if report.quorum == 0 {
                return Err(ConfigError::BadReportConfig(
                    "quorum must be positive".into(),
                ));
            }
        }
        if let Some(0) = self.defenses.rate_limit {
            return Err(ConfigError::BadReportConfig(
                "rate limit of 0 would forbid all service".into(),
            ));
        }
        if let Some(0) = self.responder_cap {
            return Err(ConfigError::BadReportConfig(
                "responder cap of 0 would forbid all exchanges".into(),
            ));
        }
        if let Some(0) = self.defenses.cutoff_quorum {
            return Err(ConfigError::BadReportConfig(
                "cutoff quorum of 0 would cut every node immediately".into(),
            ));
        }
        if let Some(digest) = &self.digest {
            if digest.bits < 64 || digest.bits > (1 << 24) {
                return Err(ConfigError::BadDigest(format!(
                    "digest bits {} outside 64..=2^24",
                    digest.bits
                )));
            }
            if digest.hashes == 0 || digest.hashes > 16 {
                return Err(ConfigError::BadDigest(format!(
                    "digest hashes {} outside 1..=16",
                    digest.hashes
                )));
            }
            if !(0.0..=1.0).contains(&digest.audit) {
                return Err(ConfigError::BadDigest(format!(
                    "audit rate {} outside [0, 1]",
                    digest.audit
                )));
            }
        }
        Ok(())
    }

    /// Total simulated rounds: warm-up + measured + drain (one lifetime so
    /// every measured update expires and gets counted).
    pub fn total_rounds(&self) -> u64 {
        u64::from(self.warmup_rounds) + u64::from(self.rounds) + u64::from(self.update_lifetime)
    }

    /// Whether release round `r` falls in the measurement window.
    pub fn is_measured_round(&self, r: u64) -> bool {
        r >= u64::from(self.warmup_rounds)
            && r < u64::from(self.warmup_rounds) + u64::from(self.rounds)
    }
}

/// Builder for [`BarGossipConfig`] (starts from Table 1 defaults).
#[derive(Debug, Clone)]
pub struct BarGossipConfigBuilder {
    cfg: BarGossipConfig,
}

impl BarGossipConfigBuilder {
    /// Set the node count.
    pub fn nodes(mut self, n: u32) -> Self {
        self.cfg.nodes = n;
        self
    }

    /// Set updates released per round.
    pub fn updates_per_round(mut self, u: u32) -> Self {
        self.cfg.updates_per_round = u;
        self
    }

    /// Set the update lifetime in rounds; re-derives the default age bands
    /// (`old_age = min(2, lifetime - 1)`, `recent_age = min(1, old_age - 1)`).
    pub fn update_lifetime(mut self, l: u32) -> Self {
        self.cfg.update_lifetime = l;
        self.cfg.old_age = 2.min(l.saturating_sub(1)).max(1);
        self.cfg.recent_age = 1.min(self.cfg.old_age.saturating_sub(1));
        self
    }

    /// Set broadcaster seeding copies.
    pub fn copies_seeded(mut self, c: u32) -> Self {
        self.cfg.copies_seeded = c;
        self
    }

    /// Set the optimistic push size.
    pub fn push_size(mut self, p: u32) -> Self {
        self.cfg.push_size = p;
        self
    }

    /// Set the number of measured release rounds.
    pub fn rounds(mut self, r: u32) -> Self {
        self.cfg.rounds = r;
        self
    }

    /// Set the warm-up rounds excluded from measurement.
    pub fn warmup_rounds(mut self, w: u32) -> Self {
        self.cfg.warmup_rounds = w;
        self
    }

    /// Set the usability threshold.
    pub fn usability_threshold(mut self, t: f64) -> Self {
        self.cfg.usability_threshold = t;
        self
    }

    /// Set the defense suite.
    pub fn defenses(mut self, d: DefenseSuite) -> Self {
        self.cfg.defenses = d;
        self
    }

    /// Enable/disable unbalanced exchanges (Figure 3 defense).
    pub fn unbalanced_exchanges(mut self, on: bool) -> Self {
        self.cfg.defenses.unbalanced_exchanges = on;
        self
    }

    /// Set the per-interaction rate limit defense.
    pub fn rate_limit(mut self, cap: Option<u32>) -> Self {
        self.cfg.defenses.rate_limit = cap;
        self
    }

    /// Enable report-and-evict with the given settings.
    pub fn report_defense(mut self, report: ReportConfig) -> Self {
        self.cfg.defenses.report = Some(report);
        self
    }

    /// Enable the silence cut-off defense with the given accuser quorum
    /// (`None` = off).
    pub fn cutoff_quorum(mut self, quorum: Option<u32>) -> Self {
        self.cfg.defenses.cutoff_quorum = quorum;
        self
    }

    /// Whether trade attackers accept updates back (see
    /// [`BarGossipConfig::attacker_receives`]).
    pub fn attacker_receives(mut self, yes: bool) -> Self {
        self.cfg.attacker_receives = yes;
        self
    }

    /// Maximum incoming interactions an honest node serves per protocol
    /// per round (`None` = unbounded).
    pub fn responder_cap(mut self, cap: Option<u32>) -> Self {
        self.cfg.responder_cap = cap;
        self
    }

    /// Population churn profile (default: none; a uniform spec converts
    /// to the one-class profile).
    pub fn churn(mut self, churn: impl Into<ChurnProfile>) -> Self {
        self.cfg.churn = churn.into();
        self
    }

    /// Flash-crowd arrival process (default: none).
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.cfg.arrival = arrival;
        self
    }

    /// Fault-injection plan (default: [`FaultPlan::none`]).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Run the two-leg digest exchange instead of the full-window round
    /// (`None`, the default, restores the classic protocol).
    pub fn digest(mut self, digest: Option<DigestExchangeConfig>) -> Self {
        self.cfg.digest = digest;
        self
    }

    /// Worker threads for the plan phase (`0` = auto; see
    /// [`BarGossipConfig::run_threads`]). Figures never depend on this.
    pub fn run_threads(mut self, threads: usize) -> Self {
        self.cfg.run_threads = threads;
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    ///
    /// Propagates [`BarGossipConfig::validate`] failures.
    pub fn build(self) -> Result<BarGossipConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_table_1() {
        let cfg = BarGossipConfig::default();
        assert_eq!(cfg.nodes, 250);
        assert_eq!(cfg.updates_per_round, 10);
        assert_eq!(cfg.update_lifetime, 10);
        assert_eq!(cfg.copies_seeded, 12);
        assert_eq!(cfg.push_size, 2);
        assert_eq!(cfg.usability_threshold, 0.93);
        assert_eq!(cfg.run_threads, 0, "auto worker count by default");
        assert!(cfg.digest.is_none(), "full-window exchange by default");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn digest_config_validates() {
        let ok = BarGossipConfig::builder()
            .digest(Some(DigestExchangeConfig::default()))
            .build();
        assert!(ok.is_ok());
        for bad in [
            DigestExchangeConfig {
                bits: 32,
                ..Default::default()
            },
            DigestExchangeConfig {
                bits: 1 << 25,
                ..Default::default()
            },
            DigestExchangeConfig {
                hashes: 0,
                ..Default::default()
            },
            DigestExchangeConfig {
                hashes: 17,
                ..Default::default()
            },
            DigestExchangeConfig {
                audit: 1.5,
                ..Default::default()
            },
        ] {
            let err = BarGossipConfig::builder().digest(Some(bad)).build();
            assert!(
                matches!(err, Err(ConfigError::BadDigest(_))),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn builder_round_trips() {
        let cfg = BarGossipConfig::builder()
            .nodes(100)
            .updates_per_round(5)
            .update_lifetime(8)
            .copies_seeded(6)
            .push_size(4)
            .rounds(20)
            .warmup_rounds(5)
            .usability_threshold(0.9)
            .build()
            .unwrap();
        assert_eq!(cfg.nodes, 100);
        assert_eq!(cfg.old_age, 2, "derived from lifetime");
        assert_eq!(cfg.recent_age, 1);
        assert_eq!(cfg.total_rounds(), 5 + 20 + 8);
    }

    #[test]
    fn validation_failures() {
        assert!(matches!(
            BarGossipConfig::builder().nodes(2).build(),
            Err(ConfigError::TooFewNodes(2))
        ));
        assert!(matches!(
            BarGossipConfig::builder().updates_per_round(0).build(),
            Err(ConfigError::BadBatch(0))
        ));
        assert!(matches!(
            BarGossipConfig::builder().updates_per_round(65).build(),
            Err(ConfigError::BadBatch(65))
        ));
        assert!(matches!(
            BarGossipConfig::builder().copies_seeded(0).build(),
            Err(ConfigError::BadSeeding(0))
        ));
        assert!(matches!(
            BarGossipConfig::builder()
                .nodes(10)
                .copies_seeded(11)
                .build(),
            Err(ConfigError::BadSeeding(11))
        ));
        assert!(matches!(
            BarGossipConfig::builder().push_size(0).build(),
            Err(ConfigError::ZeroPushSize)
        ));
        assert!(matches!(
            BarGossipConfig::builder().rounds(0).build(),
            Err(ConfigError::ZeroRounds)
        ));
        assert!(matches!(
            BarGossipConfig::builder().usability_threshold(1.0).build(),
            Err(ConfigError::BadThreshold(_))
        ));
        assert!(matches!(
            BarGossipConfig::builder().rate_limit(Some(0)).build(),
            Err(ConfigError::BadReportConfig(_))
        ));
    }

    #[test]
    fn report_config_validated() {
        let bad = ReportConfig {
            obedient_fraction: 1.5,
            ..ReportConfig::default()
        };
        assert!(matches!(
            BarGossipConfig::builder().report_defense(bad).build(),
            Err(ConfigError::BadReportConfig(_))
        ));
        let zero_quorum = ReportConfig {
            quorum: 0,
            ..ReportConfig::default()
        };
        assert!(matches!(
            BarGossipConfig::builder()
                .report_defense(zero_quorum)
                .build(),
            Err(ConfigError::BadReportConfig(_))
        ));
        let good = ReportConfig::default();
        assert!(BarGossipConfig::builder()
            .report_defense(good)
            .build()
            .is_ok());
    }

    #[test]
    fn age_bands_validated() {
        // lifetime 10 default: old_age must be < lifetime.
        let cfg = BarGossipConfig {
            old_age: 10,
            ..BarGossipConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::BadAgeBands(_))));
        let cfg = BarGossipConfig {
            old_age: 5,
            recent_age: 5,
            ..BarGossipConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::BadAgeBands(_))));
    }

    #[test]
    fn measured_round_window() {
        let cfg = BarGossipConfig::builder()
            .rounds(4)
            .warmup_rounds(2)
            .build()
            .unwrap();
        assert!(!cfg.is_measured_round(1));
        assert!(cfg.is_measured_round(2));
        assert!(cfg.is_measured_round(5));
        assert!(!cfg.is_measured_round(6));
    }

    #[test]
    fn error_display_nonempty() {
        let errors = [
            ConfigError::TooFewNodes(1),
            ConfigError::BadBatch(0),
            ConfigError::ZeroLifetime,
            ConfigError::BadSeeding(0),
            ConfigError::ZeroPushSize,
            ConfigError::ZeroRounds,
            ConfigError::BadThreshold(2.0),
            ConfigError::BadAgeBands("x".into()),
            ConfigError::BadReportConfig("y".into()),
        ];
        for e in errors {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn defense_suite_default_is_off() {
        let d = DefenseSuite::default();
        assert!(!d.unbalanced_exchanges);
        assert!(d.rate_limit.is_none());
        assert!(d.report.is_none());
        assert!(d.cutoff_quorum.is_none());
    }

    #[test]
    fn faults_default_off_and_cutoff_validated() {
        let cfg = BarGossipConfig::default();
        assert!(!cfg.faults.is_active());
        assert!(matches!(
            BarGossipConfig::builder().cutoff_quorum(Some(0)).build(),
            Err(ConfigError::BadReportConfig(_))
        ));
        let cfg = BarGossipConfig::builder()
            .cutoff_quorum(Some(3))
            .faults(FaultPlan::parse("loss:0.1").unwrap())
            .build()
            .unwrap();
        assert_eq!(cfg.defenses.cutoff_quorum, Some(3));
        assert_eq!(cfg.faults.loss, 0.1);
    }
}
