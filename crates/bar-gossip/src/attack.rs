//! The three attacks of §2: crash, ideal lotus-eater, trade lotus-eater.
//!
//! All three attacks are parameterised by the fraction of nodes the
//! attacker controls; the two lotus-eater variants additionally target a
//! *satiated set* — the paper satiates 70 % of the system (counting the
//! attacker's own nodes), chosen to balance limiting the isolated nodes'
//! trade opportunities against isolating as many nodes as possible.
//!
//! * **Crash** — attacker nodes provide no service at all (equivalently,
//!   Byzantine nodes that initiate but never complete exchanges). The
//!   baseline: the paper needs ≈ 42 % of nodes for this to break the 93 %
//!   usability bar.
//! * **Ideal lotus-eater** — attacker nodes never trade; they instantly
//!   forward everything the broadcaster seeds to them to every node in the
//!   satiated set, exploiting some out-of-protocol delivery channel.
//!   Breaks the system at ≈ 4 % control (holding only ≈ 39 % of updates —
//!   *partial* satiation suffices).
//! * **Trade lotus-eater** — attacker nodes may only use
//!   protocol-scheduled interactions, but within them give satiated-set
//!   partners every update they have (and nothing to isolated nodes).
//!   Breaks the system at ≈ 22 % control.

use lotus_core::schedule::AttackSchedule;

/// Which attack is mounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// No attacker nodes at all.
    None,
    /// Attacker nodes crash (provide no service).
    Crash,
    /// Out-of-band instant forwarding to the satiated set; never trades.
    IdealLotusEater,
    /// In-protocol give-everything to the satiated set.
    TradeLotusEater,
    /// Fault-masquerading defection: attacker nodes trade honestly but
    /// silently withhold their side of an interaction at the ambient
    /// network fault rate
    /// ([`FaultPlan::ambient_silence_rate`](lotus_core::faults::FaultPlan::ambient_silence_rate)),
    /// so every missed exchange they cause is statistically
    /// indistinguishable from background loss. On a perfect network this
    /// attacker is simply honest.
    Masquerade,
    /// Advertise-then-withhold (digest poisoning): attacker nodes
    /// advertise a *truthful* digest of what they hold, then withhold
    /// each update they owe with probability
    /// [`AttackPlan::poison_rate`]. Only meaningful on the digest
    /// substrate, where a peer learns what it is missing from the
    /// digest leg and withholding is undetectable until the transfer
    /// leg — and, with a bloom digest, each withheld id is
    /// indistinguishable from a digest false positive, giving a
    /// low-rate poisoner plausible deniability against the digest
    /// audit. Under full-window exchange this attacker is simply
    /// honest.
    Poison,
}

impl AttackKind {
    /// Label used in figure legends (matches the paper's).
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::None => "No attack",
            AttackKind::Crash => "Crash attack",
            AttackKind::IdealLotusEater => "Ideal lotus-eater attack",
            AttackKind::TradeLotusEater => "Trade lotus-eater attack",
            AttackKind::Masquerade => "Fault-masquerading attack",
            AttackKind::Poison => "Advertise-then-withhold attack",
        }
    }

    /// Whether this attack designates a satiated set.
    pub fn satiates(self) -> bool {
        matches!(
            self,
            AttackKind::IdealLotusEater | AttackKind::TradeLotusEater
        )
    }

    /// Whether this attacker stays protocol-obedient on the surface
    /// (honest-looking class dispatch, responder caps respected) and
    /// defects only covertly inside deliveries — fault-masquerading
    /// silence, or digest-poisoned withholding. Covert attackers want
    /// less scrutiny, not more.
    pub fn covert(self) -> bool {
        matches!(self, AttackKind::Masquerade | AttackKind::Poison)
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully specified attack: kind, attacker size, satiation target and
/// timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPlan {
    /// The attack being mounted.
    pub kind: AttackKind,
    /// Fraction of all nodes the attacker controls (clamped to `[0, 1]`).
    pub attacker_fraction: f64,
    /// Fraction of the *whole system* (attacker nodes included) the
    /// attacker tries to satiate. The paper uses 0.70.
    pub satiate_fraction: f64,
    /// When the attack is on and how the satiated set rotates over time
    /// (§2: "By changing who is satiated over time, the attacker could
    /// even make the service intermittently unusable for all nodes").
    /// The default [`AttackSchedule::always`] with no rotation keeps the
    /// fixed always-on attack of Figures 1-3.
    pub schedule: AttackSchedule,
    /// For [`AttackKind::Poison`]: the probability an attacker withholds
    /// each individual update it owes after a truthful digest
    /// advertisement (clamped to `[0, 1]`). `1.0` withholds everything
    /// requested; small rates sink below the digest false-positive
    /// floor and become fully deniable. Zero (the value every other
    /// constructor sets) makes the poisoner honest.
    pub poison_rate: f64,
}

impl AttackPlan {
    /// The paper's satiation target.
    pub const PAPER_SATIATE_FRACTION: f64 = 0.70;

    /// No attack at all.
    pub fn none() -> Self {
        AttackPlan {
            kind: AttackKind::None,
            attacker_fraction: 0.0,
            satiate_fraction: 0.0,
            schedule: AttackSchedule::always(),
            poison_rate: 0.0,
        }
    }

    /// A crash attack controlling `attacker_fraction` of nodes.
    pub fn crash(attacker_fraction: f64) -> Self {
        AttackPlan {
            kind: AttackKind::Crash,
            attacker_fraction: attacker_fraction.clamp(0.0, 1.0),
            satiate_fraction: 0.0,
            schedule: AttackSchedule::always(),
            poison_rate: 0.0,
        }
    }

    /// An ideal lotus-eater attack.
    pub fn ideal_lotus_eater(attacker_fraction: f64, satiate_fraction: f64) -> Self {
        AttackPlan {
            kind: AttackKind::IdealLotusEater,
            attacker_fraction: attacker_fraction.clamp(0.0, 1.0),
            satiate_fraction: satiate_fraction.clamp(0.0, 1.0),
            schedule: AttackSchedule::always(),
            poison_rate: 0.0,
        }
    }

    /// A trade lotus-eater attack.
    pub fn trade_lotus_eater(attacker_fraction: f64, satiate_fraction: f64) -> Self {
        AttackPlan {
            kind: AttackKind::TradeLotusEater,
            attacker_fraction: attacker_fraction.clamp(0.0, 1.0),
            satiate_fraction: satiate_fraction.clamp(0.0, 1.0),
            schedule: AttackSchedule::always(),
            poison_rate: 0.0,
        }
    }

    /// A fault-masquerading defection attack: attacker nodes defect at
    /// the run's ambient fault rate (the simulator reads the rate from
    /// its [`FaultPlan`](lotus_core::faults::FaultPlan)), hiding inside
    /// the background loss.
    pub fn masquerade(attacker_fraction: f64) -> Self {
        AttackPlan {
            kind: AttackKind::Masquerade,
            attacker_fraction: attacker_fraction.clamp(0.0, 1.0),
            satiate_fraction: 0.0,
            schedule: AttackSchedule::always(),
            poison_rate: 0.0,
        }
    }

    /// An advertise-then-withhold (digest-poisoning) attack: attacker
    /// nodes advertise truthful digests but withhold each owed update
    /// with probability `poison_rate`. Meaningful only on the digest
    /// substrate; elsewhere the poisoner is honest.
    pub fn poison(attacker_fraction: f64, poison_rate: f64) -> Self {
        AttackPlan {
            kind: AttackKind::Poison,
            attacker_fraction: attacker_fraction.clamp(0.0, 1.0),
            satiate_fraction: 0.0,
            schedule: AttackSchedule::always(),
            poison_rate: poison_rate.clamp(0.0, 1.0),
        }
    }

    /// Rotate the satiated set every `period` rounds (thin alias for
    /// `self.schedule.with_rotation(period)` — the timing layer owns the
    /// rotation arithmetic now).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_rotation(mut self, period: u64) -> Self {
        self.schedule = self.schedule.with_rotation(period);
        self
    }

    /// Run the attack under `schedule` (builder style).
    pub fn with_schedule(mut self, schedule: AttackSchedule) -> Self {
        // Keep any rotation already configured unless the new schedule
        // carries its own.
        let rotation = schedule.rotation.or(self.schedule.rotation);
        self.schedule = AttackSchedule {
            rotation,
            ..schedule
        };
        self
    }

    /// The rotation period, if the satiated set rotates.
    pub fn rotation_period(&self) -> Option<u64> {
        self.schedule.rotation
    }

    /// Attacker node count in a system of `n` nodes.
    pub fn attacker_count(&self, n: u32) -> u32 {
        if self.kind == AttackKind::None {
            return 0;
        }
        ((f64::from(n) * self.attacker_fraction).round() as u32).min(n)
    }

    /// Honest nodes targeted for satiation in a system of `n` nodes: the
    /// satiated set is `satiate_fraction * n` nodes *including* the
    /// attacker's own.
    pub fn satiated_honest_count(&self, n: u32) -> u32 {
        if !self.kind.satiates() {
            return 0;
        }
        let total_target = (f64::from(n) * self.satiate_fraction).round() as u32;
        total_target.saturating_sub(self.attacker_count(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(AttackKind::Crash.label(), "Crash attack");
        assert_eq!(
            AttackKind::IdealLotusEater.label(),
            "Ideal lotus-eater attack"
        );
        assert_eq!(
            AttackKind::TradeLotusEater.label(),
            "Trade lotus-eater attack"
        );
        assert_eq!(format!("{}", AttackKind::None), "No attack");
    }

    #[test]
    fn only_lotus_eaters_satiate() {
        assert!(!AttackKind::None.satiates());
        assert!(!AttackKind::Crash.satiates());
        assert!(AttackKind::IdealLotusEater.satiates());
        assert!(AttackKind::TradeLotusEater.satiates());
        assert!(!AttackKind::Masquerade.satiates());
    }

    #[test]
    fn masquerade_plan_has_no_satiated_set() {
        let plan = AttackPlan::masquerade(0.2);
        assert_eq!(plan.kind.label(), "Fault-masquerading attack");
        assert_eq!(plan.attacker_count(250), 50);
        assert_eq!(plan.satiated_honest_count(250), 0);
    }

    #[test]
    fn poison_plan_clamps_and_does_not_satiate() {
        let plan = AttackPlan::poison(0.1, 1.5);
        assert_eq!(plan.kind.label(), "Advertise-then-withhold attack");
        assert!(!plan.kind.satiates());
        assert_eq!(plan.poison_rate, 1.0);
        assert_eq!(plan.attacker_count(250), 25);
        assert_eq!(plan.satiated_honest_count(250), 0);
        assert_eq!(AttackPlan::poison(0.1, -0.3).poison_rate, 0.0);
        // Every other constructor pins the rate to zero (honest).
        assert_eq!(AttackPlan::masquerade(0.2).poison_rate, 0.0);
        assert_eq!(AttackPlan::none().poison_rate, 0.0);
    }

    #[test]
    fn counts_match_paper_arithmetic() {
        // 250 nodes, 4% attacker, satiate 70%: 10 attacker nodes,
        // 175 - 10 = 165 satiated honest nodes.
        let plan = AttackPlan::ideal_lotus_eater(0.04, 0.70);
        assert_eq!(plan.attacker_count(250), 10);
        assert_eq!(plan.satiated_honest_count(250), 165);
    }

    #[test]
    fn satiated_count_saturates() {
        // Attacker bigger than the satiation target: no honest targets.
        let plan = AttackPlan::trade_lotus_eater(0.8, 0.70);
        assert_eq!(plan.satiated_honest_count(100), 0);
    }

    #[test]
    fn crash_has_no_satiated_set() {
        let plan = AttackPlan::crash(0.42);
        assert_eq!(plan.attacker_count(250), 105);
        assert_eq!(plan.satiated_honest_count(250), 0);
    }

    #[test]
    fn none_plan_is_inert() {
        let plan = AttackPlan::none();
        assert_eq!(plan.attacker_count(250), 0);
        assert_eq!(plan.satiated_honest_count(250), 0);
    }

    #[test]
    fn rotation_builder() {
        let plan = AttackPlan::trade_lotus_eater(0.3, 0.7).with_rotation(10);
        assert_eq!(plan.rotation_period(), Some(10));
        assert_eq!(AttackPlan::none().rotation_period(), None);
    }

    #[test]
    fn schedule_builder_keeps_rotation() {
        let plan = AttackPlan::trade_lotus_eater(0.3, 0.7)
            .with_rotation(10)
            .with_schedule(AttackSchedule::oscillating(20, 10));
        assert_eq!(plan.rotation_period(), Some(10));
        assert!(matches!(
            plan.schedule.trigger,
            lotus_core::schedule::Trigger::Periodic { .. }
        ));
        let explicit = AttackPlan::crash(0.2).with_schedule(AttackSchedule::at(5).with_rotation(3));
        assert_eq!(explicit.rotation_period(), Some(3));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_rotation_rejected() {
        let _ = AttackPlan::trade_lotus_eater(0.3, 0.7).with_rotation(0);
    }

    #[test]
    fn fractions_clamp() {
        let plan = AttackPlan::crash(1.7);
        assert_eq!(plan.attacker_fraction, 1.0);
        let plan = AttackPlan::ideal_lotus_eater(-0.2, 2.0);
        assert_eq!(plan.attacker_fraction, 0.0);
        assert_eq!(plan.satiate_fraction, 1.0);
    }
}
