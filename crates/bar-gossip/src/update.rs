//! Update identities and sliding live-update windows.
//!
//! BAR Gossip streams *updates*: each round the broadcaster releases a
//! batch, and every update must reach a node within `lifetime` rounds of
//! its release to be useful (frames of a video stream). A node's holdings
//! are therefore a *sliding window* of per-release-round bitmasks;
//! [`WindowSet`] is that window. All nodes advance their windows in
//! lockstep, so set operations between two windows can align masks
//! round-by-round.

use netsim::Round;

/// A single update's identity: the round it was released in and its slot
/// within that round's batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UpdateId {
    /// Release round.
    pub round: Round,
    /// Slot within the round's batch (`0..updates_per_round`).
    pub slot: u32,
}

impl std::fmt::Display for UpdateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}.{}", self.round, self.slot)
    }
}

/// The maximum batch size [`WindowSet`] supports (one `u64` mask per
/// round).
pub const MAX_UPDATES_PER_ROUND: u32 = 64;

/// A sliding window of live-update holdings.
///
/// Masks are indexed by release round; the window covers the most recent
/// `lifetime` release rounds. Updates outside the window have expired and
/// are dropped.
///
/// ```
/// use bar_gossip::update::{UpdateId, WindowSet};
/// let mut w = WindowSet::new(10, 3); // 10 updates/round, lifetime 3
/// w.advance(0);
/// w.insert(UpdateId { round: 0, slot: 4 });
/// assert!(w.contains(UpdateId { round: 0, slot: 4 }));
/// w.advance(1);
/// w.advance(2);
/// w.advance(3); // round 0 expires
/// assert!(!w.contains(UpdateId { round: 0, slot: 4 }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSet {
    masks: std::collections::VecDeque<u64>,
    /// Release round of `masks[0]`.
    start: Round,
    per_round: u32,
    lifetime: u32,
}

impl WindowSet {
    /// An empty window for batches of `per_round` updates with the given
    /// `lifetime` in rounds.
    ///
    /// # Panics
    ///
    /// Panics if `per_round` is 0 or exceeds [`MAX_UPDATES_PER_ROUND`], or
    /// if `lifetime` is 0.
    pub fn new(per_round: u32, lifetime: u32) -> Self {
        assert!(
            (1..=MAX_UPDATES_PER_ROUND).contains(&per_round),
            "per_round must be in 1..={MAX_UPDATES_PER_ROUND}"
        );
        assert!(lifetime > 0, "lifetime must be positive");
        WindowSet {
            masks: std::collections::VecDeque::with_capacity(lifetime as usize),
            start: 0,
            per_round,
            lifetime,
        }
    }

    /// Updates per release round.
    pub fn per_round(&self) -> u32 {
        self.per_round
    }

    /// Window lifetime in rounds.
    pub fn lifetime(&self) -> u32 {
        self.lifetime
    }

    /// Release round of the oldest live mask (0 before any advance).
    pub fn start(&self) -> Round {
        self.start
    }

    /// Open release round `round` and expire anything older than
    /// `round - lifetime + 1`. Returns the mask of the expired round, if
    /// one fell out of the window.
    ///
    /// Rounds must be advanced sequentially starting from 0.
    ///
    /// # Panics
    ///
    /// Panics if rounds are advanced out of order.
    pub fn advance(&mut self, round: Round) -> Option<(Round, u64)> {
        let expected = self.start + self.masks.len() as Round;
        assert_eq!(
            round, expected,
            "advance({round}) out of order, expected {expected}"
        );
        self.masks.push_back(0);
        if self.masks.len() > self.lifetime as usize {
            let expired = self.masks.pop_front().expect("non-empty window");
            let expired_round = self.start;
            self.start += 1;
            Some((expired_round, expired))
        } else {
            None
        }
    }

    /// Fast-forward an *empty*, never-scrolled window to the alignment
    /// that advancing it through `round` one step at a time would have
    /// produced: `min(round + 1, lifetime)` all-zero masks ending at
    /// release round `round`. The lazy-engagement seam of the sharded
    /// engine — a flash-crowd node's window is not advanced while the
    /// node waits outside the system (`O(pending)` saved per round),
    /// then snapped into lockstep the round it arrives. An empty window
    /// advanced `round + 1` times holds exactly these zero masks, so
    /// the fast-forward is observationally identical to the dense path.
    ///
    /// # Panics
    ///
    /// Panics if the window holds any update or has already expired a
    /// round (those histories cannot be reproduced by zero-fill), or if
    /// the fast-forward would rewind the window.
    pub fn skip_to(&mut self, round: Round) {
        assert!(
            self.start == 0 && self.is_empty(),
            "skip_to requires a fresh, empty window"
        );
        let len = (round + 1).min(Round::from(self.lifetime)) as usize;
        assert!(
            len >= self.masks.len(),
            "skip_to({round}) would rewind past {} queued rounds",
            self.masks.len()
        );
        self.masks.clear();
        self.masks.resize(len, 0);
        self.start = round + 1 - len as Round;
    }

    fn mask_index(&self, round: Round) -> Option<usize> {
        if round < self.start {
            return None;
        }
        let idx = (round - self.start) as usize;
        if idx < self.masks.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// `true` if `id`'s release round is currently inside the window.
    pub fn is_live(&self, id: UpdateId) -> bool {
        self.mask_index(id.round).is_some()
    }

    /// Insert a live update; returns `true` if newly inserted, `false` if
    /// already held or expired (expired inserts are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `id.slot >= per_round`.
    pub fn insert(&mut self, id: UpdateId) -> bool {
        assert!(id.slot < self.per_round, "slot {} out of range", id.slot);
        let Some(idx) = self.mask_index(id.round) else {
            return false;
        };
        let bit = 1u64 << id.slot;
        let had = self.masks[idx] & bit != 0;
        self.masks[idx] |= bit;
        !had
    }

    /// Membership test (expired updates are never contained).
    pub fn contains(&self, id: UpdateId) -> bool {
        if id.slot >= self.per_round {
            return false;
        }
        self.mask_index(id.round)
            .is_some_and(|idx| self.masks[idx] & (1 << id.slot) != 0)
    }

    /// Raw mask for a release round (`None` if outside the window).
    pub fn mask(&self, round: Round) -> Option<u64> {
        self.mask_index(round).map(|i| self.masks[i])
    }

    /// Number of live updates held.
    pub fn len(&self) -> usize {
        self.masks.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// `true` if no live updates are held.
    pub fn is_empty(&self) -> bool {
        self.masks.iter().all(|&m| m == 0)
    }

    /// Number of live updates in `other` that `self` lacks.
    ///
    /// # Panics
    ///
    /// Panics if the windows are not aligned (different start/shape).
    pub fn missing_from(&self, other: &WindowSet) -> usize {
        self.check_aligned(other);
        self.masks
            .iter()
            .zip(&other.masks)
            .map(|(mine, theirs)| (theirs & !mine).count_ones() as usize)
            .sum()
    }

    fn check_aligned(&self, other: &WindowSet) {
        assert_eq!(self.start, other.start, "windows not aligned (start)");
        assert_eq!(
            self.masks.len(),
            other.masks.len(),
            "windows not aligned (len)"
        );
        assert_eq!(
            self.per_round, other.per_round,
            "windows not aligned (batch)"
        );
    }

    /// The oldest `limit` updates in `other` that `self` lacks, optionally
    /// restricted to updates of age `>= min_age` or `<= max_age` (age in
    /// rounds relative to `now`, where the newest round has age 0).
    ///
    /// "Oldest first" models nodes prioritising updates closest to expiry.
    pub fn wanted_from(
        &self,
        other: &WindowSet,
        now: Round,
        limit: usize,
        min_age: u32,
        max_age: u32,
    ) -> Vec<UpdateId> {
        let mut out = Vec::with_capacity(limit.min(8));
        self.wanted_from_into(other, now, limit, min_age, max_age, &mut out);
        out
    }

    /// [`WindowSet::wanted_from`] into a caller-owned buffer (cleared
    /// first), so per-round hot loops can reuse one allocation.
    pub fn wanted_from_into(
        &self,
        other: &WindowSet,
        now: Round,
        limit: usize,
        min_age: u32,
        max_age: u32,
        out: &mut Vec<UpdateId>,
    ) {
        self.check_aligned(other);
        out.clear();
        'outer: for (i, (mine, theirs)) in self.masks.iter().zip(&other.masks).enumerate() {
            let round = self.start + i as Round;
            let age = (now - round) as u32;
            if age < min_age || age > max_age {
                continue;
            }
            let mut want = theirs & !mine;
            while want != 0 {
                if out.len() == limit {
                    break 'outer;
                }
                let slot = want.trailing_zeros();
                out.push(UpdateId { round, slot });
                want &= want - 1;
            }
        }
    }

    /// Count of updates in `other` missing from `self` within an age band.
    pub fn missing_in_age_band(
        &self,
        other: &WindowSet,
        now: Round,
        min_age: u32,
        max_age: u32,
    ) -> usize {
        self.check_aligned(other);
        self.masks
            .iter()
            .zip(&other.masks)
            .enumerate()
            .filter(|(i, _)| {
                let age = (now - (self.start + *i as Round)) as u32;
                age >= min_age && age <= max_age
            })
            .map(|(_, (mine, theirs))| (theirs & !mine).count_ones() as usize)
            .sum()
    }

    /// Union `other` into `self` (used for pooled attacker knowledge and
    /// out-of-band deliveries).
    pub fn union_with(&mut self, other: &WindowSet) {
        self.check_aligned(other);
        for (mine, theirs) in self.masks.iter_mut().zip(&other.masks) {
            *mine |= theirs;
        }
    }

    /// Drop every held update, keeping the window's alignment (start,
    /// shape) intact — the scratch-buffer reset for pool windows that are
    /// rebuilt each round.
    pub fn clear(&mut self) {
        for mask in self.masks.iter_mut() {
            *mask = 0;
        }
    }

    /// Iterate over held updates, oldest release round first.
    pub fn iter(&self) -> impl Iterator<Item = UpdateId> + '_ {
        self.masks.iter().enumerate().flat_map(move |(i, &mask)| {
            let round = self.start + i as Round;
            (0..self.per_round)
                .filter(move |&s| mask & (1 << s) != 0)
                .map(move |slot| UpdateId { round, slot })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(per_round: u32, lifetime: u32, upto: Round) -> WindowSet {
        let mut w = WindowSet::new(per_round, lifetime);
        for t in 0..=upto {
            w.advance(t);
        }
        w
    }

    #[test]
    fn insert_contains_roundtrip() {
        let mut w = window(10, 3, 0);
        let id = UpdateId { round: 0, slot: 7 };
        assert!(w.insert(id));
        assert!(!w.insert(id));
        assert!(w.contains(id));
        assert!(!w.contains(UpdateId { round: 0, slot: 8 }));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn skip_to_matches_dense_advancement() {
        // Both before the first expiry and well after it, a fast-forward
        // must land on exactly the state a round-at-a-time advance of an
        // empty window reaches: same alignment, same (zero) masks, and
        // the next advance behaves identically.
        for upto in [0, 2, 4, 5, 17] {
            let dense = window(4, 5, upto);
            let mut lazy = WindowSet::new(4, 5);
            lazy.skip_to(upto);
            assert_eq!(lazy.start(), dense.start(), "start after skip_to({upto})");
            assert_eq!(lazy.len(), 0);
            assert_eq!(lazy.missing_from(&dense), 0);
            let mut d2 = dense.clone();
            assert_eq!(lazy.advance(upto + 1), d2.advance(upto + 1));
        }
    }

    #[test]
    #[should_panic(expected = "fresh, empty window")]
    fn skip_to_rejects_populated_windows() {
        let mut w = window(4, 5, 1);
        w.insert(UpdateId { round: 1, slot: 0 });
        w.skip_to(3);
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn skip_to_rejects_rewinds() {
        let mut w = window(4, 8, 3); // empty, start still 0, 4 masks queued
        w.skip_to(1);
    }

    #[test]
    fn advance_expires_oldest() {
        let mut w = window(4, 2, 1);
        w.insert(UpdateId { round: 0, slot: 1 });
        w.insert(UpdateId { round: 1, slot: 2 });
        let expired = w.advance(2);
        assert_eq!(expired, Some((0, 0b10)));
        assert!(!w.contains(UpdateId { round: 0, slot: 1 }));
        assert!(w.contains(UpdateId { round: 1, slot: 2 }));
        assert_eq!(w.start(), 1);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn advance_must_be_sequential() {
        let mut w = WindowSet::new(4, 2);
        w.advance(1);
    }

    #[test]
    fn expired_insert_is_ignored() {
        let mut w = window(4, 2, 3);
        assert!(!w.insert(UpdateId { round: 0, slot: 0 }));
        assert!(!w.contains(UpdateId { round: 0, slot: 0 }));
        assert!(!w.is_live(UpdateId { round: 0, slot: 0 }));
    }

    #[test]
    #[should_panic(expected = "slot")]
    fn insert_validates_slot() {
        let mut w = window(4, 2, 0);
        w.insert(UpdateId { round: 0, slot: 4 });
    }

    #[test]
    fn missing_from_counts() {
        let mut a = window(8, 2, 1);
        let mut b = window(8, 2, 1);
        b.insert(UpdateId { round: 0, slot: 0 });
        b.insert(UpdateId { round: 1, slot: 3 });
        a.insert(UpdateId { round: 1, slot: 3 });
        assert_eq!(a.missing_from(&b), 1);
        assert_eq!(b.missing_from(&a), 0);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_windows_panic() {
        let a = window(8, 2, 1);
        let b = window(8, 2, 2);
        let _ = a.missing_from(&b);
    }

    #[test]
    fn wanted_from_is_oldest_first_and_limited() {
        let mut a = window(8, 4, 3); // live rounds 0..=3, now = 3
        let mut b = window(8, 4, 3);
        for (r, s) in [(0u64, 1u32), (1, 2), (2, 3), (3, 4)] {
            b.insert(UpdateId { round: r, slot: s });
        }
        let want = a.wanted_from(&b, 3, 10, 0, u32::MAX);
        assert_eq!(
            want,
            vec![
                UpdateId { round: 0, slot: 1 },
                UpdateId { round: 1, slot: 2 },
                UpdateId { round: 2, slot: 3 },
                UpdateId { round: 3, slot: 4 },
            ]
        );
        let limited = a.wanted_from(&b, 3, 2, 0, u32::MAX);
        assert_eq!(limited.len(), 2);
        assert_eq!(limited[0].round, 0);
        // Age bands: only "old" updates (age >= 2) => rounds 0 and 1.
        let old = a.wanted_from(&b, 3, 10, 2, u32::MAX);
        assert_eq!(old.len(), 2);
        assert!(old.iter().all(|u| u.round <= 1));
        // Only "recent" (age <= 1) => rounds 2 and 3.
        let recent = a.wanted_from(&b, 3, 10, 0, 1);
        assert_eq!(recent.len(), 2);
        assert!(recent.iter().all(|u| u.round >= 2));
        a.insert(UpdateId { round: 0, slot: 1 });
        assert_eq!(a.wanted_from(&b, 3, 10, 0, u32::MAX).len(), 3);
    }

    #[test]
    fn wanted_from_into_reuses_buffer_and_clears() {
        let a = window(8, 4, 3);
        let mut b = window(8, 4, 3);
        b.insert(UpdateId { round: 1, slot: 2 });
        let mut buf = vec![UpdateId { round: 0, slot: 0 }; 5]; // stale content
        a.wanted_from_into(&b, 3, 10, 0, u32::MAX, &mut buf);
        assert_eq!(buf, vec![UpdateId { round: 1, slot: 2 }]);
        assert_eq!(
            buf,
            a.wanted_from(&b, 3, 10, 0, u32::MAX),
            "into-variant matches the allocating form"
        );
    }

    #[test]
    fn clear_keeps_alignment() {
        let mut w = window(8, 3, 4);
        w.insert(UpdateId { round: 3, slot: 1 });
        let start = w.start();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.start(), start, "clear preserves window alignment");
        assert!(w.insert(UpdateId { round: 4, slot: 0 }), "still usable");
        w.advance(5); // alignment intact: sequential advance still works
    }

    #[test]
    fn missing_in_age_band_matches_wanted() {
        let a = window(8, 4, 3);
        let mut b = window(8, 4, 3);
        for (r, s) in [(0u64, 1u32), (2, 3)] {
            b.insert(UpdateId { round: r, slot: s });
        }
        assert_eq!(a.missing_in_age_band(&b, 3, 2, u32::MAX), 1);
        assert_eq!(a.missing_in_age_band(&b, 3, 0, 1), 1);
        assert_eq!(a.missing_in_age_band(&b, 3, 0, u32::MAX), 2);
    }

    #[test]
    fn union_with_merges() {
        let mut a = window(8, 2, 1);
        let mut b = window(8, 2, 1);
        a.insert(UpdateId { round: 0, slot: 0 });
        b.insert(UpdateId { round: 1, slot: 1 });
        a.union_with(&b);
        assert_eq!(a.len(), 2);
        assert!(a.contains(UpdateId { round: 1, slot: 1 }));
    }

    #[test]
    fn iter_in_release_order() {
        let mut w = window(8, 3, 2);
        w.insert(UpdateId { round: 2, slot: 0 });
        w.insert(UpdateId { round: 0, slot: 5 });
        w.insert(UpdateId { round: 0, slot: 2 });
        let ids: Vec<UpdateId> = w.iter().collect();
        assert_eq!(
            ids,
            vec![
                UpdateId { round: 0, slot: 2 },
                UpdateId { round: 0, slot: 5 },
                UpdateId { round: 2, slot: 0 },
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", UpdateId { round: 3, slot: 1 }), "u3.1");
    }

    #[test]
    #[should_panic(expected = "per_round")]
    fn per_round_validated() {
        WindowSet::new(65, 2);
    }

    #[test]
    fn window_shorter_than_lifetime_keeps_everything() {
        let mut w = WindowSet::new(4, 5);
        for t in 0..3 {
            assert_eq!(w.advance(t), None);
        }
        assert_eq!(w.start(), 0);
    }
}
