//! Scrip-mediated gossip: the paper's §4 suggestion, built.
//!
//! "This suggests that scrip could be the basis for an incentive-
//! compatible gossip system that is robust against lotus-eater attacks."
//!
//! The idea: replace the balanced exchange's *double coincidence of
//! wants* with money. A node **buys** the updates it is missing at one
//! scrip each; a node **sells** whenever its balance is below its
//! threshold. Satiation splits into two independent conditions:
//!
//! * *update-satiated* — holds every live update → stops **buying**, but
//!   keeps **selling** (it still wants income for future rounds);
//! * *money-satiated* — balance at threshold → stops **selling**, but
//!   spends its hoard buying, putting scrip back into circulation.
//!
//! The BAR-Gossip-style lotus-eater attack (gift updates to a satiated
//! set) therefore no longer silences its targets: update-satiated targets
//! still sell to isolated nodes. To silence a node the attacker must
//! *money*-satiate it — and the fixed money supply caps how many nodes he
//! can hold at threshold simultaneously (exactly the X4 argument from the
//! `scrip-economy` crate, now inside a gossip protocol).
//!
//! The simulator reuses the BAR Gossip substrate (windows, seeding,
//! partner schedule, expiry-based delivery metrics) and mounts the same
//! trade-style attack so the two protocols' attack curves are directly
//! comparable (experiment X12).
//!
//! # Hot-loop invariants
//!
//! The round loop is allocation-free in steady state: the interaction
//! order, purchase, presence and seeding-pick lists are scratch buffers
//! owned by the sim struct, and the ideal-attack pool is a persistent
//! [`WindowSet`] advanced in lockstep with the node windows (cleared and
//! re-unioned each round) rather than rebuilt from round 0. The timing
//! layer (`lotus_core::schedule`, `lotus_core::population`) adds no
//! allocations. Scratch contents are meaningless between rounds;
//! refactors here must keep reports bit-identical per seed (the
//! determinism and schedule-golden tests are the guardrail).

use crate::attack::{AttackKind, AttackPlan};
use crate::config::BarGossipConfig;
use crate::update::WindowSet;
use lotus_core::bitset::BitSet;
use lotus_core::faults::{CutStats, Fate, FaultCounters, FaultState};
use lotus_core::population::Population;
use lotus_core::schedule::{self, MetricKey, ScheduleState};
use netsim::partner::{PartnerSchedule, Protocol};
use netsim::plan::{ExchangePlan, LINKED, VIABLE};
use netsim::rng::DetRng;
use netsim::round::RoundSim;
use netsim::{NodeId, Round};

/// Configuration of a scrip-gossip run: the gossip substrate plus the
/// monetary parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ScripGossipConfig {
    /// The gossip substrate (nodes, batches, lifetimes, seeding, horizon,
    /// churn, faults). Of `defenses`, only `cutoff_quorum` (the silence
    /// cut-off) is honored — the monetary mechanism replaces the report
    /// and rate-limit defenses; `attacker_receives` is ignored.
    pub base: BarGossipConfig,
    /// Initial scrip per node (the fixed supply is `nodes x this`).
    pub money_per_node: u32,
    /// Sell only while the balance is below this threshold.
    pub threshold: u32,
}

impl ScripGossipConfig {
    /// Gossip substrate with a monetary system sized so the unattacked
    /// economy never blocks on money: one live window's worth of scrip per
    /// node (`updates_per_round x lifetime`), with the sell-threshold at
    /// three times that (calibrated in the X12 experiment; see
    /// EXPERIMENTS.md).
    pub fn new(base: BarGossipConfig) -> Self {
        let window = base.updates_per_round * base.update_lifetime;
        ScripGossipConfig {
            money_per_node: window,
            threshold: window * 3,
            base,
        }
    }

    /// Total scrip in circulation.
    pub fn total_supply(&self) -> u64 {
        u64::from(self.base.nodes) * u64::from(self.money_per_node)
    }

    /// Validate the substrate and monetary parameters.
    ///
    /// # Errors
    ///
    /// Propagates substrate validation failures; rejects a zero threshold
    /// (nobody would ever sell).
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        self.base.validate()?;
        if self.threshold == 0 {
            return Err(crate::config::ConfigError::BadReportConfig(
                "scrip-gossip threshold of 0 means nobody ever sells".into(),
            ));
        }
        Ok(())
    }
}

/// Final report of a scrip-gossip run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScripGossipReport {
    /// Rounds executed.
    pub rounds: Round,
    /// Delivery to isolated honest nodes (comparable to
    /// [`crate::BarGossipReport::isolated_delivery`]).
    pub isolated_delivery: f64,
    /// Delivery to the attacker's satiated-set nodes.
    pub satiated_delivery: f64,
    /// Delivery over all honest nodes.
    pub overall_delivery: f64,
    /// Sales refused because the seller was money-satiated, as a fraction
    /// of attempted purchases.
    pub refusal_rate: f64,
    /// Purchases that failed because the buyer was broke.
    pub broke_rate: f64,
    /// Total scrip at the end (conserved: equals the initial supply —
    /// crashes lose a node's *window*, never its balance, so the supply
    /// invariant survives fault injection).
    pub total_money: u64,
    /// Silence cut-off outcomes; `None` when the defense is off.
    pub cuts: Option<CutStats>,
    /// Fault-injection counters; `None` when the fault plan is inactive.
    pub fault_counters: Option<FaultCounters>,
}

impl ScripGossipReport {
    /// Whether isolated nodes clear the 93 % usability bar.
    pub fn isolated_usable(&self, threshold: f64) -> bool {
        self.isolated_delivery > threshold
    }
}

#[derive(Debug, Clone)]
struct ScripNode {
    window: WindowSet,
    money: u64,
    attacker: bool,
    target: bool,
    /// Cut by the silence cut-off defense: excluded from all trade.
    cut: bool,
}

/// The scrip-gossip simulator.
///
/// ```
/// use bar_gossip::scrip_gossip::{ScripGossipConfig, ScripGossipSim};
/// use bar_gossip::{AttackPlan, BarGossipConfig};
///
/// let base = BarGossipConfig::builder()
///     .nodes(60)
///     .updates_per_round(4)
///     .copies_seeded(6)
///     .rounds(20)
///     .build()?;
/// let cfg = ScripGossipConfig::new(base);
/// let report = ScripGossipSim::new(cfg, AttackPlan::none(), 7).run_to_report();
/// assert!(report.overall_delivery > 0.9, "scrip gossip delivers");
/// # Ok::<(), bar_gossip::config::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScripGossipSim {
    cfg: ScripGossipConfig,
    plan: AttackPlan,
    nodes: Vec<ScripNode>,
    full: WindowSet,
    /// Ideal-attack pool: union of attacker holdings, rebuilt in place
    /// each round; advanced in lockstep with the node windows.
    pool: WindowSet,
    schedule: PartnerSchedule,
    rng: DetRng,
    round: Round,
    delivered: [u64; 3], // isolated, satiated, attacker
    totals: [u64; 3],
    purchases_attempted: u64,
    purchases_refused: u64,
    purchases_broke: u64,
    served_this_round: Vec<u32>,
    /// Attack timing stepper; while off, attacker nodes buy and sell
    /// honestly (the cooperate phase).
    schedule_state: ScheduleState,
    attack_active: bool,
    /// Membership under churn (from `cfg.base.churn`).
    population: Population,
    /// Fault injection (from `cfg.base.faults`); inert by default.
    faults: FaultState,
    /// Masquerade attackers' silence draws; draw-free on a perfect
    /// network (see `BarGossipSim::masq_rng`).
    masq_rng: DetRng,
    /// Distinct silence accusers per node (cut-off defense).
    accusers: Vec<BitSet>,
    cut_honest: u32,
    cut_attacker: u32,
    // Scratch buffers for the allocation-free round loop (see module
    // docs); contents are meaningless between rounds.
    /// Reusable exchange-plan batch: partner selection and viability
    /// snapshots are planned up front (`netsim::plan`), then the
    /// shuffled batch is applied in order — the same rng draws as the
    /// legacy shuffled-initiator walk.
    plan_batch: ExchangePlan,
    want_scratch: Vec<crate::update::UpdateId>,
    present_scratch: Vec<usize>,
    picks_scratch: Vec<usize>,
}

impl ScripGossipSim {
    /// Build a simulator, deterministic in `seed`.
    ///
    /// The attack plan is interpreted as in BAR Gossip: `Crash` attackers
    /// do nothing; `TradeLotusEater` attackers gift their holdings free of
    /// charge to the satiated set; `IdealLotusEater` forwards all attacker
    /// seeds out-of-band to the satiated set.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation.
    pub fn new(cfg: ScripGossipConfig, plan: AttackPlan, seed: u64) -> Self {
        cfg.validate().expect("invalid ScripGossipConfig");
        let n = cfg.base.nodes;
        let rng = DetRng::seed_from(seed).fork("scrip-gossip");
        let mut assign_rng = rng.fork("assignment");
        let attacker_count = plan.attacker_count(n) as usize;
        let mut attacker = vec![false; n as usize];
        for i in assign_rng.sample_indices(n as usize, attacker_count) {
            attacker[i] = true;
        }
        let honest: Vec<usize> = (0..n as usize).filter(|&i| !attacker[i]).collect();
        let satiated_count = (plan.satiated_honest_count(n) as usize).min(honest.len());
        let mut target = vec![false; n as usize];
        for &hi in assign_rng
            .sample_indices(honest.len(), satiated_count)
            .iter()
        {
            target[honest[hi]] = true;
        }
        let window = WindowSet::new(cfg.base.updates_per_round, cfg.base.update_lifetime);
        let nodes = (0..n as usize)
            .map(|i| ScripNode {
                window: window.clone(),
                money: u64::from(cfg.money_per_node),
                attacker: attacker[i],
                target: target[i],
                cut: false,
            })
            .collect();
        let mut population = Population::new(n as usize, cfg.base.churn, rng.fork("population"));
        // As in BAR Gossip: the flash crowd is honest — attacker nodes
        // churn like anyone but are never held back.
        for (i, &is_attacker) in attacker.iter().enumerate() {
            if is_attacker {
                population.exempt_arrival(i);
            }
        }
        population.set_arrival(cfg.base.arrival);
        let faults = FaultState::new(n as usize, cfg.base.faults, &rng);
        ScripGossipSim {
            pool: window.clone(),
            full: window,
            schedule: PartnerSchedule::new(rng.fork("schedule").next_u64(), n),
            schedule_state: ScheduleState::seeded(plan.schedule, rng.fork("adaptive")),
            attack_active: false,
            population,
            faults,
            masq_rng: rng.fork("masquerade"),
            accusers: vec![BitSet::new(n as usize); n as usize],
            cut_honest: 0,
            cut_attacker: 0,
            served_this_round: vec![0; n as usize],
            plan_batch: ExchangePlan::new(),
            want_scratch: Vec::new(),
            present_scratch: Vec::with_capacity(n as usize),
            picks_scratch: Vec::new(),
            cfg,
            plan,
            nodes,
            rng,
            round: 0,
            delivered: [0; 3],
            totals: [0; 3],
            purchases_attempted: 0,
            purchases_refused: 0,
            purchases_broke: 0,
        }
    }

    fn class_of(&self, i: usize) -> usize {
        if self.nodes[i].attacker {
            2
        } else if self.nodes[i].target {
            1
        } else {
            0
        }
    }

    /// Canonical-metric observation for metric-threshold schedules,
    /// computed from the running delivery counters (no allocation).
    /// `None` until the first measured expiry; presence observes live
    /// membership from round 0.
    fn observe(&self, key: MetricKey) -> Option<f64> {
        if key == MetricKey::PresentFraction {
            return Some(self.population.present_fraction());
        }
        if key == MetricKey::FalseCutRate {
            self.cfg.base.defenses.cutoff_quorum?;
            let honest = self.nodes.iter().filter(|n| !n.attacker).count();
            return Some(if honest == 0 {
                0.0
            } else {
                f64::from(self.cut_honest) / honest as f64
            });
        }
        schedule::class_delivery_observation(&self.delivered, &self.totals, key)
    }

    /// A node trades only while present, not crashed and not cut.
    fn alive(&self, i: usize) -> bool {
        !self.nodes[i].cut && !self.faults.is_down(i) && self.population.is_present(i)
    }

    /// Masquerade silence draw — see `BarGossipSim::masquerade_silent`.
    fn masquerade_silent(&mut self, sender: usize) -> bool {
        if !self.attack_active
            || self.plan.kind != AttackKind::Masquerade
            || !self.nodes[sender].attacker
        {
            return false;
        }
        // Round-aware rate: folds expected partition blocking in while
        // an epoch is open (see `BarGossipSim::masquerade_silent`).
        let rate = self.faults.ambient_silence_rate();
        self.masq_rng.chance(rate)
    }

    /// Silence strike by `observer` against `partner` — see
    /// `BarGossipSim::note_silence` for the defense's contract.
    fn note_silence(&mut self, observer: usize, partner: usize) {
        let Some(quorum) = self.cfg.base.defenses.cutoff_quorum else {
            return;
        };
        if self.nodes[observer].attacker {
            return;
        }
        let set = &mut self.accusers[partner];
        set.insert(observer);
        if set.len() as u32 >= quorum && !self.nodes[partner].cut {
            self.nodes[partner].cut = true;
            if self.nodes[partner].attacker {
                self.cut_attacker += 1;
            } else {
                self.cut_honest += 1;
            }
        }
    }

    /// Total scrip across all nodes (conserved).
    pub fn total_money(&self) -> u64 {
        self.nodes.iter().map(|n| n.money).sum()
    }

    /// Current balance of `node`.
    pub fn money(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].money
    }

    fn advance_windows(&mut self, t: Round) {
        let popped_full = self.full.advance(t);
        let _ = self.pool.advance(t);
        if let Some((expired_round, full_mask)) = popped_full {
            let measured = self.cfg.base.is_measured_round(expired_round);
            let total = u64::from(full_mask.count_ones());
            for i in 0..self.nodes.len() {
                let popped = self.nodes[i].window.advance(t);
                if !measured {
                    continue;
                }
                let (_, mask) = popped.expect("lockstep windows");
                let ci = self.class_of(i);
                self.delivered[ci] += u64::from((mask & full_mask).count_ones());
                self.totals[ci] += total;
            }
        } else {
            for node in self.nodes.iter_mut() {
                let _ = node.window.advance(t);
            }
        }
    }

    fn seed_round(&mut self, t: Round) {
        let mut present = std::mem::take(&mut self.present_scratch);
        present.clear();
        // The broadcaster is reliable infrastructure: seeding skips
        // crashed and cut nodes but is not subject to message faults.
        present.extend((0..self.nodes.len()).filter(|&i| self.alive(i)));
        let mut picks = std::mem::take(&mut self.picks_scratch);
        let copies = (self.cfg.base.copies_seeded as usize).min(present.len());
        let mut seed_rng = self.rng.fork_idx("seeding", t);
        for slot in 0..self.cfg.base.updates_per_round {
            let id = crate::update::UpdateId { round: t, slot };
            self.full.insert(id);
            seed_rng.sample_indices_into(present.len(), copies, &mut picks);
            for &pick in &picks {
                self.nodes[present[pick]].window.insert(id);
            }
        }
        self.present_scratch = present;
        self.picks_scratch = picks;
    }

    /// Ideal-attack forwarding: every attacker holding reaches every
    /// target instantly (out of band, free).
    fn ideal_forwarding(&mut self) {
        if self.plan.kind != AttackKind::IdealLotusEater || !self.attack_active {
            return;
        }
        // The persistent pool window stays aligned with the live ones;
        // rebuild its contents in place as the union of all attacker
        // holdings.
        self.pool.clear();
        for node in &self.nodes {
            if node.attacker {
                self.pool.union_with(&node.window);
            }
        }
        for node in self.nodes.iter_mut() {
            if node.target && !node.attacker {
                node.window.union_with(&self.pool);
            }
        }
    }

    /// A purchase: `buyer` buys everything it can afford that `seller`
    /// has. The seller refuses while money-satiated. Attackers gift free
    /// updates to targets instead of selling, and never buy.
    fn interaction(&mut self, buyer: NodeId, seller: NodeId, now: Round, cap: u32) {
        let (b, s) = (buyer.index(), seller.index());
        // Covert (masquerade/poison) attackers take the honest path
        // throughout — masquerade defection is the silence draw at the
        // delivery step below; poison is digest-substrate-only.
        if self.attack_active && !self.plan.kind.covert() && self.nodes[s].attacker {
            // Attacker seller: gift everything, free, to targets only.
            if self.plan.kind == AttackKind::TradeLotusEater && self.nodes[b].target {
                let mut gift = std::mem::take(&mut self.want_scratch);
                self.nodes[b].window.wanted_from_into(
                    &self.nodes[s].window,
                    now,
                    usize::MAX,
                    0,
                    u32::MAX,
                    &mut gift,
                );
                for &id in &gift {
                    self.nodes[b].window.insert(id);
                }
                self.want_scratch = gift;
            }
            return;
        }
        if self.attack_active && self.nodes[b].attacker {
            // Trade attackers replenish their stock by buying like anyone
            // else would — but they pay with their own scrip, which the
            // supply bounds. (They start with the same endowment.)
            // Covert attackers also buy honestly.
            if self.plan.kind != AttackKind::TradeLotusEater && !self.plan.kind.covert() {
                return;
            }
        }
        // Honest (or attacker-buyer) purchase.
        let wants = self.nodes[b].window.missing_from(&self.nodes[s].window) as u64;
        if wants == 0 {
            return;
        }
        self.purchases_attempted += 1;
        if self.served_this_round[s] >= cap {
            return; // seller busy (responder cap)
        }
        if self.nodes[s].money >= u64::from(self.cfg.threshold) {
            self.purchases_refused += 1;
            return; // money-satiated seller refuses to work
        }
        if self.nodes[b].money == 0 {
            self.purchases_broke += 1;
            return;
        }
        let afford = self.nodes[b].money.min(wants) as usize;
        let mut bought = std::mem::take(&mut self.want_scratch);
        self.nodes[b].window.wanted_from_into(
            &self.nodes[s].window,
            now,
            afford,
            0,
            u32::MAX,
            &mut bought,
        );
        if bought.is_empty() {
            self.want_scratch = bought;
            return;
        }
        // The goods ride the faulty link; payment is on delivery, so a
        // lost (or masquerade-withheld) shipment voids the sale — no
        // goods, no money moved, supply conserved — and the buyer, who
        // agreed the trade and got silence, files a cut-off strike.
        // Duplicates are idempotent here (no bandwidth meter to junk).
        let delivered = !self.masquerade_silent(s) && self.faults.fate(s, b) != Fate::Drop;
        if !delivered {
            self.note_silence(b, s);
            self.want_scratch = bought;
            return;
        }
        for &id in &bought {
            self.nodes[b].window.insert(id);
        }
        let price = bought.len() as u64;
        self.nodes[b].money -= price;
        self.nodes[s].money += price;
        self.served_this_round[s] += 1;
        self.want_scratch = bought;
    }

    /// Run the configured horizon and produce the report.
    pub fn run_to_report(mut self) -> ScripGossipReport {
        let total = self.cfg.base.total_rounds();
        while self.round < total {
            let t = self.round;
            self.round(t);
        }
        self.report()
    }

    /// Snapshot the report so far.
    pub fn report(&self) -> ScripGossipReport {
        let frac = |ci: usize| {
            if self.totals[ci] == 0 {
                0.0
            } else {
                self.delivered[ci] as f64 / self.totals[ci] as f64
            }
        };
        let honest_delivered = self.delivered[0] + self.delivered[1];
        let honest_total = self.totals[0] + self.totals[1];
        let attempted = self.purchases_attempted.max(1) as f64;
        ScripGossipReport {
            rounds: self.round,
            isolated_delivery: frac(0),
            satiated_delivery: frac(1),
            overall_delivery: if honest_total == 0 {
                0.0
            } else {
                honest_delivered as f64 / honest_total as f64
            },
            refusal_rate: self.purchases_refused as f64 / attempted,
            broke_rate: self.purchases_broke as f64 / attempted,
            total_money: self.total_money(),
            cuts: self.cfg.base.defenses.cutoff_quorum.map(|_| {
                let attackers = self.nodes.iter().filter(|n| n.attacker).count() as u32;
                CutStats {
                    cut_honest: self.cut_honest,
                    cut_attacker: self.cut_attacker,
                    honest: self.nodes.len() as u32 - attackers,
                    attackers,
                }
            }),
            fault_counters: if self.faults.is_active() {
                Some(self.faults.counters())
            } else {
                None
            },
        }
    }
}

impl RoundSim for ScripGossipSim {
    // lint: hot-loop
    fn round(&mut self, t: Round) {
        debug_assert_eq!(t, self.round, "rounds must be sequential");
        self.population.begin_round(t);
        self.faults.begin_round(t);
        if !self.faults.just_crashed().is_empty() {
            // State-losing crash: the window empties but the balance
            // survives (scrip is a ledger, not local state), keeping the
            // supply invariant intact under fault injection.
            let crashed = self.faults.just_crashed();
            for (i, node) in self.nodes.iter_mut().enumerate() {
                if crashed.contains(i) {
                    node.window.clear();
                }
            }
        }
        let observed = self
            .schedule_state
            .needs_observation()
            .and_then(|k| self.observe(k));
        self.attack_active = self.schedule_state.is_active(t, observed);
        self.advance_windows(t);
        self.seed_round(t);
        self.ideal_forwarding();
        let cap = self.cfg.base.responder_cap.unwrap_or(u32::MAX);
        self.served_this_round.fill(0);
        // Two purchase opportunities per node per round, mirroring BAR
        // Gossip's two sub-protocols.
        for proto in [Protocol::BalancedExchange, Protocol::OptimisticPush] {
            // Plan: batch every node's scheduled partner and a viability
            // snapshot (ascending), then shuffle the batch — the same
            // length, so the same draws as the legacy initiator shuffle.
            let mut plan = std::mem::take(&mut self.plan_batch);
            let n = self.nodes.len();
            plan.reset(n);
            let planner = self.schedule.planner(t, proto);
            planner.fill(
                NodeId::all(n as u32),
                |v, p| {
                    if !(self.alive(v.index()) && self.alive(p.index())) {
                        0
                    } else if self.faults.link_up(v.index(), p.index()) {
                        VIABLE | LINKED
                    } else {
                        VIABLE
                    }
                },
                plan.entries_mut(),
            );
            let proto_tag = match proto {
                Protocol::BalancedExchange => 1u64,
                Protocol::OptimisticPush => 2,
                Protocol::Other(k) => 0x1_0000 + u64::from(k),
            };
            plan.shuffle(
                &mut self
                    .rng
                    .fork_idx("order", t.wrapping_mul(4).wrapping_add(proto_tag)),
            );
            // Apply: aliveness only shrinks mid-phase (silence cuts),
            // so non-viable pairs skip exactly as the legacy per-pair
            // checks did; the viable remainder rechecks liveness when
            // the cut-off defense can remove nodes under its feet.
            let strict = self.cfg.base.defenses.cutoff_quorum.is_some();
            for &e in plan.entries() {
                if !e.is_viable() {
                    continue; // absent/crashed/cut end: the slot is wasted
                }
                let (v, p) = (e.initiator, e.partner);
                if strict && !self.alive(v.index()) {
                    continue;
                }
                if self.attack_active
                    && self.nodes[v.index()].attacker
                    && matches!(
                        self.plan.kind,
                        AttackKind::Crash | AttackKind::IdealLotusEater
                    )
                {
                    continue; // crash/ideal attackers never interact
                }
                if strict && !self.alive(p.index()) {
                    continue;
                }
                if !e.is_linked() {
                    self.faults.note_partition_blocked();
                    continue; // partitioned apart
                }
                self.interaction(v, p, t, cap);
            }
            self.plan_batch = plan;
        }
        self.round = t + 1;
    }

    fn rounds_run(&self) -> Round {
        self.round
    }
}

impl lotus_core::scenario::Scenario for ScripGossipSim {
    type Config = ScripGossipConfig;
    type Attack = AttackPlan;
    type Report = ScripGossipReport;
    const NAME: &'static str = "scrip-gossip";

    fn build(cfg: ScripGossipConfig, attack: AttackPlan, seed: u64) -> Self {
        ScripGossipSim::new(cfg, attack, seed)
    }

    fn step(&mut self) -> lotus_core::scenario::StepOutcome {
        let total = self.cfg.base.total_rounds();
        if self.round >= total {
            return lotus_core::scenario::StepOutcome::Done;
        }
        let t = self.round;
        RoundSim::round(self, t);
        if self.round >= total {
            lotus_core::scenario::StepOutcome::Done
        } else {
            lotus_core::scenario::StepOutcome::Continue
        }
    }

    fn report(&self) -> ScripGossipReport {
        ScripGossipSim::report(self)
    }

    fn arm_trace(&self) -> Option<&[lotus_core::adaptive::TraceEntry]> {
        self.schedule_state.arm_trace()
    }
}

impl lotus_core::scenario::Summarize for ScripGossipReport {
    /// Common vocabulary for scrip-mediated gossip: delivery fractions as
    /// in BAR Gossip, with the market-health rates as custom metrics.
    fn summarize(&self) -> lotus_core::scenario::ScenarioReport {
        let mut r = lotus_core::scenario::ScenarioReport::new(
            "scrip-gossip",
            self.rounds,
            self.overall_delivery,
            self.satiated_delivery,
            self.isolated_usable(lotus_core::report::UsabilityThreshold::BAR_GOSSIP.0),
        )
        .with_metric("isolated_delivery", self.isolated_delivery)
        .with_metric("satiated_delivery", self.satiated_delivery)
        .with_metric("refusal_rate", self.refusal_rate)
        .with_metric("broke_rate", self.broke_rate)
        .with_metric("total_money", self.total_money as f64);
        // Conditional metrics: absent without the cut-off defense or an
        // active fault plan, so pre-fault goldens stay byte-identical.
        if let Some(c) = self.cuts {
            r = r
                .with_metric("false_cut_rate", c.false_cut_rate())
                .with_metric("attacker_cut_rate", c.attacker_cut_rate())
                .with_metric("cut_precision", c.precision())
                .with_metric("cut_recall", c.attacker_cut_rate());
        }
        if let Some(f) = self.fault_counters {
            r = r
                .with_metric("faults_dropped", f.dropped as f64)
                .with_metric("faults_duplicated", f.duplicated as f64)
                .with_metric("faults_delayed", f.delayed as f64)
                .with_metric("faults_crashes", f.crashes as f64)
                .with_metric("faults_partition_blocked", f.partition_blocked as f64);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BarGossipConfig {
        BarGossipConfig::builder()
            .nodes(80)
            .updates_per_round(5)
            .update_lifetime(10)
            .copies_seeded(8)
            .rounds(20)
            .warmup_rounds(10)
            .build()
            .unwrap()
    }

    fn cfg() -> ScripGossipConfig {
        ScripGossipConfig::new(base())
    }

    #[test]
    fn healthy_scrip_gossip_delivers() {
        let report = ScripGossipSim::new(cfg(), AttackPlan::none(), 1).run_to_report();
        assert!(
            report.overall_delivery > 0.95,
            "unattacked delivery {}",
            report.overall_delivery
        );
    }

    #[test]
    fn money_is_conserved() {
        let mut sim = ScripGossipSim::new(cfg(), AttackPlan::trade_lotus_eater(0.3, 0.7), 2);
        let supply = sim.total_money();
        for t in 0..30 {
            sim.round(t);
            assert_eq!(sim.total_money(), supply, "supply must never change");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a =
            ScripGossipSim::new(cfg(), AttackPlan::trade_lotus_eater(0.2, 0.7), 9).run_to_report();
        let b =
            ScripGossipSim::new(cfg(), AttackPlan::trade_lotus_eater(0.2, 0.7), 9).run_to_report();
        assert_eq!(a, b);
    }

    #[test]
    fn update_satiated_nodes_keep_selling() {
        // The crux of the defense: under the trade attack, satiated-set
        // nodes still sell to isolated nodes, so isolated delivery holds
        // far better than in vanilla BAR Gossip at the same attack size.
        let attack = AttackPlan::trade_lotus_eater(0.30, 0.70);
        let scrip = ScripGossipSim::new(cfg(), attack, 5).run_to_report();
        let vanilla = crate::BarGossipSim::new(base(), attack, 5).run_to_report();
        assert!(
            scrip.isolated_delivery > vanilla.isolated_delivery(),
            "scrip gossip must resist the gift attack: {} vs vanilla {}",
            scrip.isolated_delivery,
            vanilla.isolated_delivery()
        );
    }

    #[test]
    fn refusals_happen_only_at_threshold() {
        // With a huge threshold nobody is ever money-satiated: no refusals.
        let mut c = cfg();
        c.threshold = 100_000;
        let report = ScripGossipSim::new(c, AttackPlan::none(), 3).run_to_report();
        assert_eq!(report.refusal_rate, 0.0);
        // With a threshold at the starting balance, sellers refuse until
        // they have spent below it.
        let mut c = cfg();
        c.threshold = c.money_per_node; // everyone starts money-satiated
        let report = ScripGossipSim::new(c, AttackPlan::none(), 3).run_to_report();
        assert!(report.refusal_rate > 0.0, "got {}", report.refusal_rate);
    }

    #[test]
    fn money_survives_faults_and_masquerade() {
        // Crashes empty windows but never balances; voided sales move no
        // money — the supply invariant holds under the full fault plan.
        let mut b = base();
        b.faults =
            lotus_core::faults::FaultPlan::parse("loss:0.2/crash:0.03:0.3/partition:8:6:0.4")
                .unwrap();
        let mut sim =
            ScripGossipSim::new(ScripGossipConfig::new(b), AttackPlan::masquerade(0.2), 4);
        let supply = sim.total_money();
        for t in 0..30 {
            sim.round(t);
            assert_eq!(sim.total_money(), supply, "supply must never change");
        }
        let report = sim.report();
        let counters = report.fault_counters.expect("active plan reports counters");
        assert!(counters.dropped > 0);
    }

    #[test]
    fn zero_fault_plan_is_report_invisible() {
        let mut b = base();
        b.faults = lotus_core::faults::FaultPlan::parse("loss:0/dup:0").unwrap();
        let faulted = ScripGossipSim::new(
            ScripGossipConfig::new(b),
            AttackPlan::trade_lotus_eater(0.2, 0.7),
            9,
        )
        .run_to_report();
        let plain =
            ScripGossipSim::new(cfg(), AttackPlan::trade_lotus_eater(0.2, 0.7), 9).run_to_report();
        assert_eq!(faulted, plain);
        assert!(faulted.cuts.is_none());
        assert!(faulted.fault_counters.is_none());
    }

    #[test]
    fn cutoff_is_surgical_without_faults() {
        let mut b = base();
        b.defenses.cutoff_quorum = Some(2);
        let report =
            ScripGossipSim::new(ScripGossipConfig::new(b), AttackPlan::none(), 3).run_to_report();
        let cuts = report.cuts.expect("cutoff defense reports cut stats");
        assert_eq!((cuts.cut_honest, cuts.cut_attacker), (0, 0));
    }

    #[test]
    fn cutoff_under_loss_cuts_honest_nodes() {
        let mut b = base();
        b.defenses.cutoff_quorum = Some(2);
        b.faults = lotus_core::faults::FaultPlan::parse("loss:0.3").unwrap();
        let report =
            ScripGossipSim::new(ScripGossipConfig::new(b), AttackPlan::none(), 3).run_to_report();
        let cuts = report.cuts.expect("cutoff defense reports cut stats");
        assert!(cuts.cut_honest > 0, "voided sales read as silence");
    }

    #[test]
    fn zero_threshold_rejected() {
        let mut c = cfg();
        c.threshold = 0;
        assert!(c.validate().is_err());
    }
}
