//! Property tests for the plan/apply exchange redesign, on the
//! dependency-free [`proptest_lite`](lotus_core::proptest_lite) harness.
//!
//! The exchange layer's contract after the batched-plan redesign has two
//! halves, and each gets a property here:
//!
//! * **Stream equivalence.** The plan phase (hoisted [`PairPlanner`]
//!   hashing + one [`ExchangePlan::shuffle`]) must consume *exactly* the
//!   rng draws of the per-edge walk it replaced — a shuffled initiator
//!   list with `partner_of` recomputed per edge — so every golden figure
//!   stays byte-identical. Pinned over ~200 generated universes of
//!   arbitrary size, round, protocol, and active subset.
//! * **Worker-count invariance.** A full BAR Gossip run must produce an
//!   identical report for *any* `run_threads` value — the pool only
//!   splits the read-only plan walk, never the apply — under churn,
//!   faults (loss/crash/partition), flash crowds, and every attack. The
//!   multi-shard cases push past the plan pool's engagement floor so the
//!   parallel split itself is exercised, not just the knob.

use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipReport, BarGossipSim, ReportConfig};
use lotus_core::faults::FaultPlan;
use lotus_core::population::{ArrivalProcess, ChurnSpec};
use lotus_core::proptest_lite::{check, Draw};
use netsim::partner::{PartnerSchedule, Protocol};
use netsim::plan::{ExchangePlan, READY};
use netsim::NodeId;

#[test]
fn plan_phase_consumes_the_per_edge_walk_stream() {
    check("plan == shuffled per-edge walk", 200, |d| {
        let n = d.int("n", 2, 3_000) as u32;
        let seed = d.int("seed", 0, i64::MAX) as u64;
        let round = d.int("round", 0, 1_000) as u64;
        let proto = match d.int("proto", 0, 2) {
            0 => Protocol::BalancedExchange,
            1 => Protocol::OptimisticPush,
            _ => Protocol::Other(7),
        };
        let density = d.ratio("density");

        // The pre-redesign walk: an active initiator list, shuffled,
        // then one per-edge partner_of call per initiator.
        let mut mask_rng = d.rng("mask");
        let active: Vec<NodeId> = NodeId::all(n)
            .filter(|_| mask_rng.chance(density.max(0.05)))
            .collect();
        let sched = PartnerSchedule::new(seed, n);
        let mut legacy = active.clone();
        let mut legacy_rng = d.rng("order");
        legacy_rng.shuffle(&mut legacy);

        // The redesigned phase: batched fill + one plan shuffle.
        let planner = sched.planner(round, proto);
        let mut plan = ExchangePlan::new();
        plan.reset(active.len());
        planner.fill(active.iter().copied(), |_, _| READY, plan.entries_mut());
        let mut plan_rng = d.rng("order");
        plan.shuffle(&mut plan_rng);

        if plan.len() != legacy.len() {
            return Err(format!("{} planned vs {} walked", plan.len(), legacy.len()));
        }
        for (e, &v) in plan.entries().iter().zip(&legacy) {
            if e.initiator != v {
                return Err(format!(
                    "shuffle diverged: planned {:?} where the walk has {v:?}",
                    e.initiator
                ));
            }
            let want = sched.partner_of(v, round, proto);
            if e.partner != want {
                return Err(format!(
                    "partner diverged for {v:?}: planned {:?}, per-edge {want:?}",
                    e.partner
                ));
            }
        }
        // Both paths must leave the shared rng at the same point, or the
        // next consumer would fork differently.
        if legacy_rng.next_u64() != plan_rng.next_u64() {
            return Err("rng streams diverged after the shuffle".to_string());
        }
        Ok(())
    });
}

/// One drawn adversarial universe — attack, defenses, churn, faults,
/// and a flash crowd — drawn *once* per case so every `run_threads`
/// setting replays the identical configuration.
struct Universe {
    seed: u64,
    attack: AttackPlan,
    churn: ChurnSpec,
    arrival: ArrivalProcess,
    faults: FaultPlan,
    unbalanced: bool,
    report: Option<ReportConfig>,
    cutoff: Option<u32>,
    nodes: u32,
    rounds: u32,
}

fn draw_universe(d: &mut Draw, nodes: u32, rounds: u32) -> Universe {
    let seed = d.int("seed", 0, i64::MAX) as u64;
    let attack = match d.int("attack", 0, 3) {
        0 => AttackPlan::none(),
        1 => AttackPlan::crash(d.ratio("crash_frac") * 0.5),
        2 => AttackPlan::ideal_lotus_eater(
            d.ratio("attack_frac") * 0.5,
            0.3 + d.ratio("satiation") * 0.6,
        ),
        _ => AttackPlan::trade_lotus_eater(
            d.ratio("attack_frac") * 0.5,
            0.3 + d.ratio("satiation") * 0.6,
        ),
    };
    Universe {
        seed,
        attack,
        churn: ChurnSpec::new(d.ratio("leave") * 0.2, d.ratio("rejoin") * 0.5),
        arrival: ArrivalProcess::Burst {
            round: 1 + d.int("burst_round", 0, 3) as u64,
            size: nodes / 4,
            period: Some(2),
        },
        faults: FaultPlan {
            loss: d.ratio("loss") * 0.3,
            duplicate: 0.0,
            delay: d.ratio("delay") * 0.2,
            crash: d.ratio("fault_crash") * 0.05,
            recover: 0.5,
            partition_start: 2,
            partition_len: d.int("partition_len", 0, 3) as u64,
            partition_frac: 0.3,
        },
        unbalanced: d.int("unbalanced", 0, 1) == 1,
        report: (d.int("with_report", 0, 1) == 1).then(|| ReportConfig {
            obedient_fraction: d.ratio("obedient"),
            quorum: 2,
            excess_slack: 1,
        }),
        cutoff: (d.int("with_cutoff", 0, 1) == 1).then_some(2),
        nodes,
        rounds,
    }
}

impl Universe {
    fn run_at(&self, threads: usize) -> Result<BarGossipReport, String> {
        let mut b = BarGossipConfig::builder()
            .nodes(self.nodes)
            .updates_per_round(3)
            .update_lifetime(4)
            .copies_seeded(5)
            .rounds(self.rounds)
            .warmup_rounds(2)
            .run_threads(threads)
            .churn(self.churn)
            .arrival(self.arrival)
            .faults(self.faults)
            .unbalanced_exchanges(self.unbalanced)
            .cutoff_quorum(self.cutoff);
        if let Some(report) = self.report {
            b = b.report_defense(report);
        }
        let cfg = b.build().map_err(|e| format!("config rejected: {e:?}"))?;
        Ok(BarGossipSim::new(cfg, self.attack, self.seed).run_to_report())
    }
}

/// The worker pool must be invisible in every figure: identical reports
/// at 1, 2, and 8 plan threads.
fn assert_thread_invariance(d: &mut Draw, nodes: u32, rounds: u32) -> Result<(), String> {
    let universe = draw_universe(d, nodes, rounds);
    let base = universe.run_at(1)?;
    for threads in [2usize, 8] {
        let other = universe.run_at(threads)?;
        if other != base {
            return Err(format!(
                "report diverged at run_threads={threads}: {other:?} vs {base:?}"
            ));
        }
    }
    Ok(())
}

#[test]
fn reports_identical_across_run_threads_single_shard() {
    check("run_threads invariance (dense path)", 40, |d| {
        let nodes = d.int("nodes", 30, 200) as u32;
        assert_thread_invariance(d, nodes, 6)
    });
}

#[test]
fn reports_identical_across_run_threads_multi_shard() {
    // Past 1024 nodes the plan walks live shards; past the pool's
    // engagement floor (16384 active) it genuinely splits across
    // workers. Fewer cases — these universes are big.
    check("run_threads invariance (sharded path)", 6, |d| {
        let nodes = 2_000 + 4_000 * d.int("nodes_k", 0, 5) as u32;
        assert_thread_invariance(d, nodes, 3)
    });
}

#[test]
fn reports_identical_across_run_threads_at_pool_scale() {
    // One deliberately-large universe well past the engagement floor:
    // the parallel split itself (chunk planning, disjoint subslice
    // fills, shard-order concatenation) must be byte-invisible.
    check("run_threads invariance (pool engaged)", 2, |d| {
        assert_thread_invariance(d, 24_000, 3)
    });
}
