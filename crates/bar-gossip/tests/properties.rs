//! Property-based tests for the BAR Gossip simulator: report sanity and
//!
//! Requires the external `proptest` crate: enable the `proptest-tests`
//! feature *and* add the `proptest` dev-dependency once the workspace
//! has access to a registry (the default build must stay dependency-free).
#![cfg(feature = "proptest-tests")]
//! protocol invariants under arbitrary attacks and defenses.

use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim, DefenseSuite, ReportConfig};
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = AttackPlan> {
    prop_oneof![
        Just(AttackPlan::none()),
        (0.0f64..1.0).prop_map(AttackPlan::crash),
        (0.0f64..0.9, 0.3f64..0.9).prop_map(|(a, s)| AttackPlan::ideal_lotus_eater(a, s)),
        (0.0f64..0.9, 0.3f64..0.9).prop_map(|(a, s)| AttackPlan::trade_lotus_eater(a, s)),
        (0.0f64..0.9, 0.3f64..0.9, 1u64..20)
            .prop_map(|(a, s, p)| AttackPlan::trade_lotus_eater(a, s).with_rotation(p)),
    ]
}

fn arb_defenses() -> impl Strategy<Value = DefenseSuite> {
    (
        any::<bool>(),
        proptest::option::of(1u32..8),
        proptest::option::of((0.0f64..1.0, 1u32..5)),
    )
        .prop_map(|(unbalanced, rate_limit, report)| DefenseSuite {
            unbalanced_exchanges: unbalanced,
            rate_limit,
            report: report.map(|(obedient_fraction, quorum)| ReportConfig {
                obedient_fraction,
                quorum,
                excess_slack: 1,
            }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reports_are_always_sane(
        seed in any::<u64>(),
        plan in arb_plan(),
        defenses in arb_defenses(),
        push_size in 1u32..12,
    ) {
        let cfg = BarGossipConfig::builder()
            .nodes(40)
            .updates_per_round(4)
            .update_lifetime(6)
            .copies_seeded(5)
            .rounds(8)
            .warmup_rounds(4)
            .push_size(push_size)
            .defenses(defenses)
            .build()
            .expect("valid config");
        let report = BarGossipSim::new(cfg, plan, seed).run_to_report();

        for v in [
            report.delivery.isolated,
            report.delivery.satiated,
            report.delivery.overall,
            report.attacker_coverage,
            report.junk_fraction,
            report.min_node_delivery,
            report.nodes_ever_unusable,
            report.unusable_node_rounds,
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
        prop_assert_eq!(
            report.counts.isolated + report.counts.satiated + report.counts.attacker,
            40
        );
        prop_assert!(report.evictions <= report.counts.attacker,
            "only attackers are ever evicted");
        prop_assert!(report.mean_attacker_upload >= 0.0);
        // The overall delivery is a weighted mean of the class deliveries.
        let lo = report.delivery.isolated.min(report.delivery.satiated);
        let hi = report.delivery.isolated.max(report.delivery.satiated);
        if report.counts.isolated > 0 && report.counts.satiated > 0 {
            prop_assert!(report.delivery.overall >= lo - 1e-9);
            prop_assert!(report.delivery.overall <= hi + 1e-9);
        }
    }

    #[test]
    fn crash_attackers_never_upload(seed in any::<u64>(), frac in 0.0f64..1.0) {
        let cfg = BarGossipConfig::builder()
            .nodes(30)
            .updates_per_round(4)
            .update_lifetime(6)
            .copies_seeded(5)
            .rounds(6)
            .warmup_rounds(3)
            .build()
            .expect("valid config");
        let report = BarGossipSim::new(cfg, AttackPlan::crash(frac), seed).run_to_report();
        prop_assert_eq!(report.mean_attacker_upload, 0.0);
    }

    #[test]
    fn honest_only_system_never_evicts(seed in any::<u64>(), obedient in 0.0f64..1.0) {
        let cfg = BarGossipConfig::builder()
            .nodes(30)
            .updates_per_round(4)
            .update_lifetime(6)
            .copies_seeded(5)
            .rounds(6)
            .warmup_rounds(3)
            .unbalanced_exchanges(true)
            .report_defense(ReportConfig {
                obedient_fraction: obedient,
                quorum: 1,
                excess_slack: 1,
            })
            .build()
            .expect("valid config");
        let report = BarGossipSim::new(cfg, AttackPlan::none(), seed).run_to_report();
        prop_assert_eq!(report.evictions, 0);
    }
}
