//! A deliberately small Rust lexer — just enough syntax awareness for the
//! lint rules in this workspace, with zero dependencies.
//!
//! The scanner distinguishes the four things the rules care about:
//!
//! * **identifiers** (and keywords — the rules tell them apart by name),
//! * **punctuation**, one token per character (`::` arrives as two `:`),
//! * **string literals** (plain, byte and raw, any `#` depth), so that a
//!   banned name inside a string never trips a rule,
//! * **line comments**, preserved verbatim because `// lint: hot-loop`
//!   markers live in them; block comments are skipped (markers must be
//!   line comments, which keeps the marker grammar one-dimensional).
//!
//! Everything else — numbers, char literals, lifetimes — is consumed and
//! discarded. The lexer never fails: unterminated constructs simply run to
//! end of file, which is the forgiving behaviour a lint pass wants (the
//! compiler proper will complain about the real error).

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `cfg`, ...).
    Ident(String),
    /// A single punctuation character (`#`, `[`, `(`, `:`, `{`, ...).
    Punct(char),
    /// The contents of a string literal, escapes left unprocessed.
    Str(String),
    /// The text of a `//` line comment, leading slashes stripped.
    LineComment(String),
}

/// One lexed token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lex `src` into a token stream. Infallible by design.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                let text: String = b[start..j].iter().collect();
                toks.push(Token {
                    kind: TokKind::LineComment(text),
                    line,
                });
                i = j;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Block comment, honouring nesting as Rust does.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (s, ni, nl) = scan_string(&b, i + 1, line);
                toks.push(Token {
                    kind: TokKind::Str(s),
                    line,
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let (tok_line, s, ni, nl) = scan_prefixed_string(&b, i, line);
                toks.push(Token {
                    kind: TokKind::Str(s),
                    line: tok_line,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`, `'\''`).
                if i + 1 < b.len() && (b[i + 1].is_alphanumeric() || b[i + 1] == '_') {
                    let close = i + 2 < b.len() && b[i + 2] == '\'';
                    if close {
                        i += 3; // plain char literal like 'x'
                    } else {
                        // Lifetime: consume the identifier after the quote.
                        let mut j = i + 1;
                        while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                            j += 1;
                        }
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: scan to closing quote.
                    let mut j = i + 1;
                    while j < b.len() && b[j] != '\'' {
                        if b[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    i = (j + 1).min(b.len());
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let text: String = b[i..j].iter().collect();
                toks.push(Token {
                    kind: TokKind::Ident(text),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Numbers (with suffixes like 0u64, 1_000, 0x3f) — discard.
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '.') {
                    // Stop a float scan from eating `..` range syntax.
                    if b[j] == '.' && j + 1 < b.len() && b[j + 1] == '.' {
                        break;
                    }
                    j += 1;
                }
                i = j;
            }
            c => {
                toks.push(Token {
                    kind: TokKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Scan a plain `"…"` body starting just past the opening quote. Returns
/// (contents, index past closing quote, updated line).
fn scan_string(b: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let mut s = String::new();
    while i < b.len() {
        match b[i] {
            '\\' if i + 1 < b.len() => {
                s.push(b[i]);
                s.push(b[i + 1]);
                if b[i + 1] == '\n' {
                    line += 1;
                }
                i += 2;
            }
            '"' => return (s, i + 1, line),
            c => {
                if c == '\n' {
                    line += 1;
                }
                s.push(c);
                i += 1;
            }
        }
    }
    (s, i, line)
}

/// Does the text at `i` begin a raw (`r"`, `r#"`) or byte (`b"`, `br"`)
/// string literal, as opposed to an identifier starting with r/b?
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
    }
    if j == i {
        return false;
    }
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Scan a raw/byte string starting at its `r`/`b` prefix. Returns
/// (line of the opening quote, contents, index past the close, updated line).
fn scan_prefixed_string(b: &[char], mut i: usize, mut line: u32) -> (u32, String, usize, u32) {
    let tok_line = line;
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if i < b.len() && b[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < b.len() && b[i] == '"');
    i += 1; // past the opening quote
    if !raw {
        let (s, ni, nl) = scan_string(b, i, line);
        return (tok_line, s, ni, nl);
    }
    // Raw string: no escapes; close on `"` followed by `hashes` hash marks.
    let mut s = String::new();
    while i < b.len() {
        if b[i] == '"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return (tok_line, s, i + 1 + hashes, line);
        }
        if b[i] == '\n' {
            line += 1;
        }
        s.push(b[i]);
        i += 1;
    }
    (tok_line, s, i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_puncts_survive() {
        let toks = lex("use std::collections::HashMap;");
        assert_eq!(
            idents("use std::collections::HashMap;"),
            ["use", "std", "collections", "HashMap"]
        );
        assert!(toks.iter().any(|t| t.is_punct(';')));
    }

    #[test]
    fn strings_hide_their_contents_from_ident_scan() {
        assert_eq!(idents(r#"let x = "HashMap inside string";"#), ["let", "x"]);
        let toks = lex(r#"let x = "HashMap inside string";"#);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Str(s) if s.contains("HashMap"))));
    }

    #[test]
    fn raw_and_byte_strings_are_single_tokens() {
        assert_eq!(
            idents(r##"let x = r#"HashMap "quoted" here"#;"##),
            ["let", "x"]
        );
        assert_eq!(idents(r#"let y = b"HashMap bytes";"#), ["let", "y"]);
    }

    #[test]
    fn comments_are_kept_but_inert() {
        let toks = lex("// lint: hot-loop\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::LineComment(" lint: hot-loop".into()));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokKind::Ident("fn".into()));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn block_comments_vanish_but_count_lines() {
        let toks = lex("/* HashMap\n nested /* deeper */ still */\nfn g() {}");
        assert_eq!(toks[0].kind, TokKind::Ident("fn".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn lifetimes_and_char_literals_do_not_derail() {
        // Lifetime names are consumed with their quote — they can never
        // collide with a banned API name.
        assert_eq!(
            idents("fn f<'a>(x: &'a str) -> char { '\\'' }"),
            ["fn", "f", "x", "str", "char"]
        );
        assert_eq!(
            idents("let c = 'x'; let d = '\\n';"),
            ["let", "c", "let", "d"]
        );
    }

    #[test]
    fn numeric_literals_are_discarded_and_ranges_survive() {
        let toks = lex("for i in 0..10u32 { a[i] = 1.5; }");
        assert_eq!(
            idents("for i in 0..10u32 { a[i] = 1.5; }"),
            ["for", "i", "in", "a", "i"]
        );
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 2);
    }
}
