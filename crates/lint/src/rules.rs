//! The lint rules and the engine that runs them over a set of files.
//!
//! Four rules, all determinism- or hot-path-motivated:
//!
//! * **forbidden-api** — per-tier API bans. Simulation crates may not name
//!   `HashMap`/`HashSet` (randomized iteration order), `SystemTime`,
//!   `Instant::now` (wall-clock reads) or `std::env` (ambient config);
//!   harness crates keep the hash-container and `SystemTime` bans but may
//!   read clocks and the environment. Sanctioned exceptions live in
//!   `allowlist.txt`.
//! * **fork-label** — every `fork("…")`/`fork_idx("…", i)` label must be
//!   documented in `fork_labels.txt`, and a plain-`fork` label may not be
//!   used twice in one function (two forks of the same parent with the
//!   same label yield *identical* streams, which is always a bug;
//!   `fork_idx` is exempt — reusing one label across indices is exactly
//!   what it is for).
//! * **hot-loop** — a function annotated `// lint: hot-loop` may not use
//!   allocating constructs (`Vec::new`, `vec!`, `collect`, `clone`, ...).
//! * **crate-root** — every crate root carries `#![forbid(unsafe_code)]`
//!   and `#![warn(missing_docs)]`.
//!
//! Test code (`tests/` trees and `#[cfg(test)]` items) is exempt from the
//! API and fork-label rules: tests may hash, time and fork ad hoc.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, TokKind, Token};

/// Which ban set applies to a file's crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Simulation/model crates: full determinism ban set.
    Sim,
    /// Harness/tooling crates: hash containers and `SystemTime` only.
    Harness,
}

/// One file presented to the engine, already read and classified.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (stable across platforms).
    pub path: String,
    /// Ban set for this file's crate.
    pub tier: Tier,
    /// True for `src/lib.rs` of a crate (rule `crate-root` applies).
    pub is_crate_root: bool,
    /// Full file contents.
    pub text: String,
}

/// A rule finding. Ordered so reports are stable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// File the finding is in (repo-relative).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id: `forbidden-api`, `fork-label`, `hot-loop`, `crate-root`
    /// or `allowlist` (a stale allowlist entry).
    pub rule: &'static str,
    /// The offending token as the allowlist would name it
    /// (`HashMap`, `Instant::now`, `clone`, a fork label, ...).
    pub token: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One sanctioned exception: `path rule token`, whitespace-separated, with
/// an optional `-- reason` tail. Suppresses every matching violation in
/// that file; entries that suppress nothing are themselves reported stale.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Repo-relative path the entry applies to.
    pub path: String,
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Token the entry suppresses (matches [`Violation::token`]).
    pub token: String,
}

/// Parse `allowlist.txt` contents. `#` lines and blanks are ignored.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split("--").next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(path), Some(rule), Some(token)) = (parts.next(), parts.next(), parts.next()) {
            out.push(AllowEntry {
                path: path.to_string(),
                rule: rule.to_string(),
                token: token.to_string(),
            });
        }
    }
    out
}

/// Parse `fork_labels.txt` contents into label → description. Lines are
/// `label: description`; `#` lines and blanks are ignored.
pub fn parse_registry(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((label, desc)) = line.split_once(':') {
            out.insert(label.trim().to_string(), desc.trim().to_string());
        }
    }
    out
}

/// A `fork("label")` use site, for registry generation and checking.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ForkUse {
    /// The stream label.
    pub label: String,
    /// File of the call site.
    pub file: String,
    /// 1-based line of the call site.
    pub line: u32,
    /// Name of the enclosing function (`?` at module scope).
    pub func: String,
}

/// Hot-loop allocation ban set, as (pattern, reported token). A pattern is
/// 1–3 idents/puncts matched in sequence, comments skipped.
const HOT_BANNED: &[(&[&str], &str)] = &[
    (&["Vec", "::", "new"], "Vec::new"),
    (&["Vec", "::", "with_capacity"], "Vec::with_capacity"),
    (&["vec", "!"], "vec!"),
    (&["format", "!"], "format!"),
    (&["Box", "::", "new"], "Box::new"),
    (&["String", "::", "from"], "String::from"),
    (&["String", "::", "new"], "String::new"),
    (&["collect"], "collect"),
    (&["to_vec"], "to_vec"),
    (&["to_string"], "to_string"),
    (&["to_owned"], "to_owned"),
    (&["clone"], "clone"),
];

/// Everything a single-file scan produces.
struct FileScan {
    violations: Vec<Violation>,
    forks: Vec<ForkUse>,
}

/// Run every rule over `files`, resolving exceptions against `allowlist`
/// and fork labels against `registry`. Returns sorted violations.
pub fn check(
    files: &[SourceFile],
    registry: &BTreeMap<String, String>,
    allowlist: &[AllowEntry],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut all_forks: Vec<ForkUse> = Vec::new();
    for f in files {
        let scan = scan_file(f);
        violations.extend(scan.violations);
        all_forks.extend(scan.forks);
    }

    // Registry hygiene: every used label documented, every documented
    // label used. Sites are sorted, so "first use" is deterministic.
    all_forks.sort();
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for fork in &all_forks {
        if used.insert(&fork.label) {
            match registry.get(&fork.label) {
                None => violations.push(Violation {
                    file: fork.file.clone(),
                    line: fork.line,
                    rule: "fork-label",
                    token: fork.label.clone(),
                    message: format!(
                        "rng stream label \"{}\" is not documented in fork_labels.txt \
                         (run `lotus-lint --update-registry`, then describe it)",
                        fork.label
                    ),
                }),
                Some(desc) if desc.is_empty() || desc.starts_with("TODO") => {
                    violations.push(Violation {
                        file: fork.file.clone(),
                        line: fork.line,
                        rule: "fork-label",
                        token: fork.label.clone(),
                        message: format!(
                            "rng stream label \"{}\" has a placeholder description in \
                             fork_labels.txt — document what the stream drives",
                            fork.label
                        ),
                    })
                }
                Some(_) => {}
            }
        }
    }
    for label in registry.keys() {
        if !used.contains(label.as_str()) {
            violations.push(Violation {
                file: "crates/lint/fork_labels.txt".to_string(),
                line: 0,
                rule: "fork-label",
                token: label.clone(),
                message: format!("registry entry \"{label}\" matches no fork() call — remove it"),
            });
        }
    }

    // Apply the allowlist, tracking which entries earned their keep.
    let mut entry_used = vec![false; allowlist.len()];
    violations.retain(|v| {
        for (i, e) in allowlist.iter().enumerate() {
            if e.path == v.file && e.rule == v.rule && e.token == v.token {
                entry_used[i] = true;
                return false;
            }
        }
        true
    });
    for (i, e) in allowlist.iter().enumerate() {
        if !entry_used[i] {
            violations.push(Violation {
                file: "crates/lint/allowlist.txt".to_string(),
                line: 0,
                rule: "allowlist",
                token: e.token.clone(),
                message: format!(
                    "stale allowlist entry `{} {} {}` suppresses nothing — remove it",
                    e.path, e.rule, e.token
                ),
            });
        }
    }

    violations.sort();
    violations
}

/// Collect every fork-label use site across `files` (for `--update-registry`).
pub fn collect_forks(files: &[SourceFile]) -> Vec<ForkUse> {
    let mut out: Vec<ForkUse> = files.iter().flat_map(|f| scan_file(f).forks).collect();
    out.sort();
    out
}

/// Scan one file against every per-file rule.
fn scan_file(f: &SourceFile) -> FileScan {
    let toks = lex(&f.text);
    let test_spans = test_item_spans(&toks);
    let in_test = |i: usize| test_spans.iter().any(|&(s, e)| i >= s && i <= e);

    let mut violations = Vec::new();
    let mut forks = Vec::new();

    // ---- crate-root policy -------------------------------------------
    if f.is_crate_root {
        for (attr, why) in [
            ("unsafe_code", "#![forbid(unsafe_code)]"),
            ("missing_docs", "#![warn(missing_docs)]"),
        ] {
            if !has_inner_attr(&toks, attr) {
                violations.push(Violation {
                    file: f.path.clone(),
                    line: 1,
                    rule: "crate-root",
                    token: attr.to_string(),
                    message: format!("crate root is missing the workspace-standard `{why}`"),
                });
            }
        }
    }

    // ---- token-stream rules ------------------------------------------
    let mut depth = 0usize;
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut fn_labels: BTreeSet<(String, String)> = BTreeSet::new();
    // Hot-loop state: the marker arms the *next* function; its body span
    // is the brace depth recorded when that function opens.
    let mut hot_armed = false;
    let mut hot_region: Option<usize> = None; // depth of the hot fn body

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::LineComment(c) if c.trim() == "lint: hot-loop" => {
                hot_armed = true;
            }
            TokKind::LineComment(_) => {}
            TokKind::Punct('{') => {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    if hot_armed {
                        hot_armed = false;
                        hot_region = Some(depth);
                    }
                    fn_stack.push((name, depth));
                }
            }
            TokKind::Punct('}') => {
                if let Some(&(_, d)) = fn_stack.last() {
                    if d == depth {
                        fn_stack.pop();
                    }
                }
                if hot_region == Some(depth) {
                    hot_region = None;
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(';') => {
                // A trait method signature ends without a body.
                pending_fn = None;
            }
            TokKind::Ident(name) => {
                if name == "fn" {
                    if let Some(TokKind::Ident(fname)) =
                        next_code(&toks, i + 1).map(|j| &toks[j].kind)
                    {
                        pending_fn = Some(fname.clone());
                    }
                } else {
                    // Forbidden APIs (outside test items).
                    if !in_test(i) {
                        if let Some((token, msg)) = forbidden_api_at(&toks, i, f.tier) {
                            violations.push(Violation {
                                file: f.path.clone(),
                                line: t.line,
                                rule: "forbidden-api",
                                token,
                                message: msg,
                            });
                        }
                    }
                    // Fork labels (outside test items).
                    if !in_test(i) && (name == "fork" || name == "fork_idx") {
                        if let Some(j) = next_code(&toks, i + 1) {
                            if toks[j].is_punct('(') {
                                if let Some(k) = next_code(&toks, j + 1) {
                                    if let TokKind::Str(label) = &toks[k].kind {
                                        let func = fn_stack
                                            .last()
                                            .map(|(n, _)| n.clone())
                                            .unwrap_or_else(|| "?".to_string());
                                        // `fork_idx` reuses one label across
                                        // indices by design; only plain
                                        // `fork` duplicates are bugs.
                                        if name == "fork"
                                            && !fn_labels.insert((func.clone(), label.clone()))
                                        {
                                            violations.push(Violation {
                                                file: f.path.clone(),
                                                line: toks[k].line,
                                                rule: "fork-label",
                                                token: label.clone(),
                                                message: format!(
                                                    "label \"{label}\" forked twice in fn \
                                                     `{func}` — identical parent state + label \
                                                     means identical streams"
                                                ),
                                            });
                                        }
                                        forks.push(ForkUse {
                                            label: label.clone(),
                                            file: f.path.clone(),
                                            line: toks[k].line,
                                            func,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    // Hot-loop allocation bans.
                    if hot_region.is_some() {
                        if let Some(token) = hot_banned_at(&toks, i) {
                            let func = fn_stack.last().map(|(n, _)| n.as_str()).unwrap_or("?");
                            violations.push(Violation {
                                file: f.path.clone(),
                                line: t.line,
                                rule: "hot-loop",
                                token: token.to_string(),
                                message: format!(
                                    "`{token}` allocates inside `// lint: hot-loop` fn `{func}` \
                                     — reuse a scratch buffer instead"
                                ),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    FileScan { violations, forks }
}

/// Does a banned-API pattern start at token `i`? Returns (token, message).
fn forbidden_api_at(toks: &[Token], i: usize, tier: Tier) -> Option<(String, String)> {
    let name = toks[i].ident()?;
    match name {
        "HashMap" | "HashSet" => Some((
            name.to_string(),
            format!("`{name}` has randomized iteration order — use `BTreeMap`/`BTreeSet`/`BitSet`"),
        )),
        "SystemTime" => Some((
            name.to_string(),
            "`SystemTime` reads the wall clock — simulations take time from round counters"
                .to_string(),
        )),
        "Instant" if tier == Tier::Sim && follows_path(toks, i, &["now"]) => Some((
            "Instant::now".to_string(),
            "`Instant::now` reads the wall clock — sim crates must be replayable".to_string(),
        )),
        "std" if tier == Tier::Sim && follows_path(toks, i, &["env"]) => Some((
            "std::env".to_string(),
            "`std::env` injects ambient state — sim behaviour must come from explicit config"
                .to_string(),
        )),
        _ => None,
    }
}

/// Does `toks[i]` continue as `::seg1::seg2...` for the given segments?
fn follows_path(toks: &[Token], i: usize, segs: &[&str]) -> bool {
    let mut at = i;
    for seg in segs {
        let Some(c1) = next_code(toks, at + 1) else {
            return false;
        };
        if !toks[c1].is_punct(':') {
            return false;
        }
        let Some(c2) = next_code(toks, c1 + 1) else {
            return false;
        };
        if !toks[c2].is_punct(':') {
            return false;
        }
        let Some(s) = next_code(toks, c2 + 1) else {
            return false;
        };
        if toks[s].ident() != Some(seg) {
            return false;
        }
        at = s;
    }
    true
}

/// Does a hot-loop-banned pattern start at token `i`?
fn hot_banned_at(toks: &[Token], i: usize) -> Option<&'static str> {
    'pattern: for (pat, token) in HOT_BANNED {
        let mut at = i;
        for (k, want) in pat.iter().enumerate() {
            if k > 0 {
                match next_code(toks, at + 1) {
                    Some(j) => at = j,
                    None => continue 'pattern,
                }
            }
            // `::` arrives as two `:` tokens; fold the second one here.
            if *want == "::" {
                if !toks[at].is_punct(':') {
                    continue 'pattern;
                }
                match next_code(toks, at + 1) {
                    Some(j) if toks[j].is_punct(':') => at = j,
                    _ => continue 'pattern,
                }
                continue;
            }
            let matches = match &toks[at].kind {
                TokKind::Ident(s) => s == want,
                TokKind::Punct(c) => want.len() == 1 && want.starts_with(*c),
                _ => false,
            };
            if !matches {
                continue 'pattern;
            }
        }
        return Some(token);
    }
    None
}

/// Index of the next non-comment token at or after `i`.
fn next_code(toks: &[Token], i: usize) -> Option<usize> {
    (i..toks.len()).find(|&j| !matches!(toks[j].kind, TokKind::LineComment(_)))
}

/// Token spans (inclusive) of items annotated `#[cfg(test)]` (or any cfg
/// attribute naming `test`), including the whole body of `mod tests { … }`.
fn test_item_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#')
            && next_code(toks, i + 1).map(|j| toks[j].is_punct('[')) == Some(true)
        {
            // Collect the attribute's idents up to the matching `]`.
            let open = next_code(toks, i + 1).unwrap();
            let mut j = open + 1;
            let mut brack = 1usize;
            let mut names: Vec<&str> = Vec::new();
            while j < toks.len() && brack > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => brack += 1,
                    TokKind::Punct(']') => brack -= 1,
                    TokKind::Ident(s) => names.push(s),
                    _ => {}
                }
                j += 1;
            }
            let is_cfg_test = names.first() == Some(&"cfg") && names.contains(&"test");
            if is_cfg_test {
                // Skip further attributes, then span the next item: through
                // its matching close brace, or its `;` if it has no body.
                let start = i;
                let mut k = j;
                loop {
                    match toks.get(k).map(|t| &t.kind) {
                        Some(TokKind::Punct('#'))
                            if next_code(toks, k + 1).map(|m| toks[m].is_punct('['))
                                == Some(true) =>
                        {
                            let mut brack = 0usize;
                            while k < toks.len() {
                                match toks[k].kind {
                                    TokKind::Punct('[') => brack += 1,
                                    TokKind::Punct(']') => {
                                        brack -= 1;
                                        if brack == 0 {
                                            k += 1;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                        Some(TokKind::Punct('{')) => {
                            let mut depth = 0usize;
                            while k < toks.len() {
                                match toks[k].kind {
                                    TokKind::Punct('{') => depth += 1,
                                    TokKind::Punct('}') => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            break;
                        }
                        Some(TokKind::Punct(';')) | None => break,
                        _ => k += 1,
                    }
                }
                let end = k.min(toks.len().saturating_sub(1));
                spans.push((start, end));
                i = end + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Is the inner attribute `#![…(attr…)…]` present (e.g. `unsafe_code`
/// inside `#![forbid(unsafe_code)]`)? Matches on the ident alone, which is
/// unambiguous for the two attributes the crate-root rule checks.
fn has_inner_attr(toks: &[Token], attr: &str) -> bool {
    let mut i = 0usize;
    while let Some(h) = (i..toks.len()).find(|&j| toks[j].is_punct('#')) {
        let Some(bang) = next_code(toks, h + 1) else {
            return false;
        };
        if toks[bang].is_punct('!') {
            if let Some(open) = next_code(toks, bang + 1) {
                if toks[open].is_punct('[') {
                    let mut j = open + 1;
                    let mut brack = 1usize;
                    while j < toks.len() && brack > 0 {
                        match &toks[j].kind {
                            TokKind::Punct('[') => brack += 1,
                            TokKind::Punct(']') => brack -= 1,
                            TokKind::Ident(s) if s == attr => return true,
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
        }
        i = h + 1;
    }
    false
}
