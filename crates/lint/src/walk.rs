//! Deterministic workspace traversal: find every `.rs` file the rules
//! apply to and classify it by crate tier.
//!
//! Scope is the `src/` tree of every workspace crate (plus the root
//! crate's `src/`). Integration tests (`tests/`), benches, examples and
//! the lint crate's own `fixtures/` are out of scope by construction:
//! they are harness-side code that may hash, time and allocate freely.
//! Directory entries are sorted before descent so the scan order — and
//! therefore the report — is byte-stable across platforms and runs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{SourceFile, Tier};

/// Crates whose `src/` gets the full simulation-determinism ban set.
/// Everything else in the workspace is harness tier.
const SIM_CRATES: &[&str] = &[
    "crates/core",
    "crates/netsim",
    "crates/bar-gossip",
    "crates/scrip",
    "crates/bittorrent",
];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "tests", "benches", "examples"];

/// Collect and classify every in-scope `.rs` file under `root` (the
/// workspace root). Paths in the result are repo-relative with `/`
/// separators; the list is sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk_dir(root, &mut paths)?;
    paths.sort();

    let mut out = Vec::new();
    for abs in paths {
        let rel = relative_slash(&abs, root);
        // Only files inside some crate's `src/` tree are in scope.
        if !(rel.starts_with("src/") || rel.contains("/src/")) {
            continue;
        }
        let crate_dir = match rel.split_once("/src/") {
            Some((prefix, _)) => prefix.to_string(),
            None => String::new(), // the root crate's own src/
        };
        let tier = if SIM_CRATES.contains(&crate_dir.as_str()) {
            Tier::Sim
        } else {
            Tier::Harness
        };
        let is_crate_root = rel == "src/lib.rs" || rel.ends_with("/src/lib.rs");
        let text = fs::read_to_string(&abs)?;
        out.push(SourceFile {
            path: rel,
            tier,
            is_crate_root,
            text,
        });
    }
    Ok(out)
}

/// Recursively collect `.rs` files, sorted at each level.
fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk_dir(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `abs` relative to `root`, `/`-separated regardless of platform.
fn relative_slash(abs: &Path, root: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
