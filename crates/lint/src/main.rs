//! `lotus-lint` CLI — run the workspace determinism/hot-path checks.
//!
//! ```text
//! lotus-lint [--root DIR] [--quiet]    # check; exit 1 on violations
//! lotus-lint --update-registry [...]   # regenerate fork_labels.txt
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` containing `[workspace]`,
//! so the binary works from any subdirectory and from `cargo run -p lint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--update-registry" => update = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "lotus-lint: determinism & hot-path invariant checker\n\n\
                     usage: lotus-lint [--root DIR] [--quiet] [--update-registry]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("lotus-lint: no workspace root found (pass --root)");
            return ExitCode::FAILURE;
        }
    };

    if update {
        return match lotus_lint::update_registry(&root) {
            Ok((added, removed)) => {
                println!(
                    "lotus-lint: registry updated ({added} label(s) added, {removed} removed) \
                     — fill in any TODO descriptions"
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("lotus-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match lotus_lint::run_workspace(&root) {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            if report.violations.is_empty() {
                if !quiet {
                    println!(
                        "lotus-lint: {} files scanned, {} rng stream labels, 0 violations",
                        report.files_scanned, report.fork_labels
                    );
                }
                ExitCode::SUCCESS
            } else {
                println!(
                    "lotus-lint: {} violation(s) in {} files scanned",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lotus-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("lotus-lint: {msg} (try --help)");
    ExitCode::FAILURE
}
