//! `lotus-lint` — a dependency-free determinism and hot-path invariant
//! checker for this workspace.
//!
//! The whole reproduction rests on two properties that `rustc` cannot
//! enforce: **bit-for-bit determinism** (same seed ⇒ byte-identical
//! reports, across thread counts and platforms) and **allocation-free
//! steady-state stepping** (the bench gate times hot loops; a stray
//! `collect()` shows up as noise, not as a failure). This crate makes
//! both mechanically checkable:
//!
//! * a hand-rolled [`lexer`] tokenizes Rust source just deeply enough to
//!   tell identifiers from strings and comments (so `"HashMap"` in a
//!   string or doc comment never fires a rule);
//! * a [`rules`] engine runs four checks — per-tier forbidden APIs, rng
//!   fork-label hygiene, `// lint: hot-loop` allocation bans and
//!   crate-root lint policy — over the [`walk`]ed workspace;
//! * sanctioned exceptions live in `allowlist.txt` next to this crate,
//!   and every rng stream label is documented in `fork_labels.txt`
//!   (regenerate with `lotus-lint --update-registry`). Both files are
//!   themselves linted: stale entries are violations.
//!
//! Like `lotus_core::proptest_lite`, this is deliberately not a general
//! tool. It is ~600 lines of std-only Rust that knows this workspace's
//! invariants, so the CI gate (`tools/lint.sh`) costs one `cargo run`
//! and zero dependencies.
//!
//! The dynamic twin of the hot-loop rule lives in
//! `lotus_core::alloc_guard`: the static rule catches allocating *syntax*
//! in marked functions, the counting allocator proves the *runtime*
//! allocation count per steady-state step is zero for every registered
//! scenario (`crates/bench/tests/alloc_steady.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod walk;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

pub use rules::{check, collect_forks, AllowEntry, SourceFile, Tier, Violation};

/// Where, relative to the workspace root, the exception list lives.
pub const ALLOWLIST_PATH: &str = "crates/lint/allowlist.txt";
/// Where, relative to the workspace root, the fork-label registry lives.
pub const REGISTRY_PATH: &str = "crates/lint/fork_labels.txt";

/// Outcome of a full workspace run.
#[derive(Debug)]
pub struct Report {
    /// Sorted rule findings (empty means the gate passes).
    pub violations: Vec<Violation>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// How many distinct fork labels were seen.
    pub fork_labels: usize,
}

/// Run every rule over the workspace rooted at `root`, resolving the
/// allowlist and fork-label registry from their committed locations.
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    let files = walk::workspace_files(root)?;
    let registry = load_registry(root)?;
    let allowlist = load_allowlist(root)?;
    let labels = {
        let forks = rules::collect_forks(&files);
        let mut seen: Vec<&str> = forks.iter().map(|f| f.label.as_str()).collect();
        seen.dedup();
        seen.len()
    };
    let violations = rules::check(&files, &registry, &allowlist);
    Ok(Report {
        violations,
        files_scanned: files.len(),
        fork_labels: labels,
    })
}

/// Load `fork_labels.txt` (empty registry if the file does not exist yet).
pub fn load_registry(root: &Path) -> io::Result<BTreeMap<String, String>> {
    match fs::read_to_string(root.join(REGISTRY_PATH)) {
        Ok(text) => Ok(rules::parse_registry(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(BTreeMap::new()),
        Err(e) => Err(e),
    }
}

/// Load `allowlist.txt` (empty list if the file does not exist yet).
pub fn load_allowlist(root: &Path) -> io::Result<Vec<AllowEntry>> {
    match fs::read_to_string(root.join(ALLOWLIST_PATH)) {
        Ok(text) => Ok(rules::parse_allowlist(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Regenerate `fork_labels.txt` from the labels actually used: keep the
/// existing description for known labels, seed `TODO: describe` for new
/// ones, drop labels no longer used. Returns (added, removed) label
/// counts. The emitted file is sorted, so regeneration is idempotent.
pub fn update_registry(root: &Path) -> io::Result<(usize, usize)> {
    let files = walk::workspace_files(root)?;
    let old = load_registry(root)?;
    let forks = rules::collect_forks(&files);

    let mut new: BTreeMap<String, String> = BTreeMap::new();
    for f in &forks {
        let desc = old
            .get(&f.label)
            .cloned()
            .unwrap_or_else(|| "TODO: describe this stream".to_string());
        new.entry(f.label.clone()).or_insert(desc);
    }
    let added = new.keys().filter(|l| !old.contains_key(*l)).count();
    let removed = old.keys().filter(|l| !new.contains_key(*l)).count();

    let mut out = String::from(
        "# rng fork-label registry — every stream label used by `fork(..)` /\n\
         # `fork_idx(..)` in non-test code, with what the stream drives.\n\
         # Regenerate the label set with `lotus-lint --update-registry`;\n\
         # descriptions are written by humans and preserved across updates.\n",
    );
    for (label, desc) in &new {
        out.push_str(label);
        out.push_str(": ");
        out.push_str(desc);
        out.push('\n');
    }
    fs::write(root.join(REGISTRY_PATH), out)?;
    Ok((added, removed))
}
