//! Known-bad fixture: allocating constructs inside a `// lint: hot-loop`
//! function, plus an unmarked twin that may allocate freely.

// lint: hot-loop
fn hot(xs: &[u32]) -> u32 {
    let copied = xs.to_vec();
    let doubled: Vec<u32> = copied.iter().map(|x| x * 2).collect();
    let label = format!("{}", doubled.len());
    let mut fresh = Vec::new();
    fresh.push(label.clone());
    doubled.iter().sum()
}

fn cold(xs: &[u32]) -> Vec<u32> {
    // Not marked: collect/clone here must not fire.
    xs.to_vec().iter().map(|x| x + 1).collect()
}
