//! Known-good fixture: a Sim-tier crate root the engine must pass with
//! zero findings — including a hot loop built on the scratch-buffer idiom.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scratch-reusing accumulator in the house hot-loop style.
pub struct Acc {
    scratch: Vec<u32>,
}

impl Acc {
    // lint: hot-loop
    /// Sums doubled inputs without allocating.
    pub fn step(&mut self, xs: &[u32]) -> u32 {
        self.scratch.clear();
        self.scratch.extend(xs.iter().map(|x| x * 2));
        self.scratch.iter().sum()
    }
}

fn streams(rng: &mut DetRng) {
    let _a = rng.fork("documented");
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt() {
        let _m: HashMap<u32, u32> = HashMap::new();
        let _t = Instant::now();
    }
}
