//! Known-bad fixture: fork-label hygiene violations. `"documented"` is in
//! the self-test registry; `"mystery"` is not; `"twice"` is duplicated.

fn streams(rng: &mut DetRng) {
    let _a = rng.fork("documented");
    let _b = rng.fork("mystery");
    let _c = rng.fork("twice");
    let _d = rng.fork("twice");
    // Indexed forks reuse a label by design — never a duplicate.
    let _e = rng.fork_idx("documented-indexed", 0);
    let _f = rng.fork_idx("documented-indexed", 1);
}
