//! Known-bad fixture: a crate root missing `#![forbid(unsafe_code)]` and
//! `#![warn(missing_docs)]`.

pub fn lib_fn() -> u32 {
    7
}
