//! Known-bad fixture: every forbidden-API pattern, one per function.
//! Scanned by the self-tests as a Sim-tier file; never compiled.

use std::collections::{HashMap, HashSet};

fn hashes() {
    let _m: HashMap<u32, u32> = HashMap::new();
    let _s: HashSet<u32> = HashSet::new();
}

fn clocks() {
    let _t = std::time::SystemTime::now();
    let _i = std::time::Instant::now();
}

fn ambient() {
    let _v = std::env::var("SEED");
}

// None of these may fire: the names are hidden in strings, comments and
// test items.
fn immune() {
    let _s = "HashMap SystemTime std::env";
    let _r = r#"HashSet Instant::now"#;
    // HashMap in a comment is fine.
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_hash() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
