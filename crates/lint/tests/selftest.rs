//! Self-tests: the engine must flag every committed known-bad fixture
//! (each rule, each pattern) and pass the known-good one — so a lint
//! regression fails `cargo test -p lint` before it silently waves the
//! real workspace through.

use std::collections::BTreeMap;
use std::path::Path;

use lotus_lint::rules::{check, parse_allowlist, parse_registry, SourceFile, Tier, Violation};

fn fixture(name: &str, tier: Tier, is_crate_root: bool) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    SourceFile {
        path: format!("crates/lint/fixtures/{name}"),
        tier,
        is_crate_root,
        text: std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}")),
    }
}

fn registry(labels: &[&str]) -> BTreeMap<String, String> {
    labels
        .iter()
        .map(|l| (l.to_string(), format!("stream {l}")))
        .collect()
}

fn tokens(violations: &[Violation], rule: &str) -> Vec<String> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.token.clone())
        .collect()
}

#[test]
fn forbidden_api_fixture_trips_every_sim_ban() {
    let files = [fixture("bad_forbidden_api.rs", Tier::Sim, false)];
    let violations = check(&files, &registry(&[]), &[]);
    let mut seen = tokens(&violations, "forbidden-api");
    seen.sort();
    seen.dedup();
    assert_eq!(
        seen,
        [
            "HashMap",
            "HashSet",
            "Instant::now",
            "SystemTime",
            "std::env"
        ]
    );
    // Only the forbidden-api rule fires on this fixture.
    assert_eq!(
        violations
            .iter()
            .filter(|v| v.rule != "forbidden-api")
            .count(),
        0
    );
}

#[test]
fn forbidden_api_is_blind_inside_strings_comments_and_tests() {
    let files = [fixture("bad_forbidden_api.rs", Tier::Sim, false)];
    let violations = check(&files, &registry(&[]), &[]);
    let text = &files[0].text;
    let line_of = |needle: &str| {
        text.lines()
            .position(|l| l.contains(needle))
            .map(|i| i as u32 + 1)
            .unwrap()
    };
    // Nothing fires at or after the `immune` fn (strings, comments) or
    // inside the `#[cfg(test)]` module.
    let immune_start = line_of("fn immune");
    assert!(
        violations.iter().all(|v| v.line < immune_start),
        "late violation: {violations:#?}"
    );
}

#[test]
fn harness_tier_keeps_hash_and_clock_bans_but_allows_env_and_instant() {
    let files = [fixture("bad_forbidden_api.rs", Tier::Harness, false)];
    let violations = check(&files, &registry(&[]), &[]);
    let mut seen = tokens(&violations, "forbidden-api");
    seen.sort();
    seen.dedup();
    assert_eq!(seen, ["HashMap", "HashSet", "SystemTime"]);
}

#[test]
fn hot_loop_fixture_trips_each_allocating_construct_only_in_marked_fn() {
    let files = [fixture("bad_hot_loop.rs", Tier::Sim, false)];
    let violations = check(&files, &registry(&[]), &[]);
    let mut seen = tokens(&violations, "hot-loop");
    seen.sort();
    assert_eq!(seen, ["Vec::new", "clone", "collect", "format!", "to_vec"]);
    // The unmarked `cold` fn allocates with impunity: every finding is
    // before it starts.
    let cold_start = files[0]
        .text
        .lines()
        .position(|l| l.contains("fn cold"))
        .unwrap() as u32
        + 1;
    assert!(
        violations.iter().all(|v| v.line < cold_start),
        "cold fn flagged: {violations:#?}"
    );
}

#[test]
fn fork_label_fixture_flags_unregistered_and_duplicate_labels() {
    let files = [fixture("bad_fork_labels.rs", Tier::Sim, false)];
    let violations = check(
        &files,
        &registry(&["documented", "documented-indexed", "twice"]),
        &[],
    );
    let seen = tokens(&violations, "fork-label");
    assert_eq!(seen, ["mystery", "twice"]);
    assert!(violations
        .iter()
        .any(|v| v.message.contains("not documented")));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("forked twice")));
}

#[test]
fn placeholder_descriptions_and_stale_registry_entries_are_findings() {
    let files = [fixture("good_clean.rs", Tier::Sim, true)];
    let mut reg = registry(&["documented", "never-used"]);
    reg.insert(
        "documented".to_string(),
        "TODO: describe this stream".to_string(),
    );
    let violations = check(&files, &reg, &[]);
    let seen = tokens(&violations, "fork-label");
    assert_eq!(seen, ["documented", "never-used"]);
    assert!(violations.iter().any(|v| v.message.contains("placeholder")));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("matches no fork()")));
}

#[test]
fn crate_root_fixture_is_missing_both_policy_attributes() {
    let files = [fixture("bad_crate_root.rs", Tier::Sim, true)];
    let violations = check(&files, &registry(&[]), &[]);
    let mut seen = tokens(&violations, "crate-root");
    seen.sort();
    assert_eq!(seen, ["missing_docs", "unsafe_code"]);
}

#[test]
fn good_fixture_passes_clean() {
    let files = [fixture("good_clean.rs", Tier::Sim, true)];
    let violations = check(&files, &registry(&["documented"]), &[]);
    assert_eq!(violations, [], "clean fixture flagged");
}

#[test]
fn allowlist_suppresses_matches_and_flags_stale_entries() {
    let files = [fixture("bad_forbidden_api.rs", Tier::Sim, false)];
    let allow = parse_allowlist(
        "crates/lint/fixtures/bad_forbidden_api.rs forbidden-api std::env -- sanctioned\n\
         crates/lint/fixtures/bad_forbidden_api.rs forbidden-api Mutex -- stale\n",
    );
    let violations = check(&files, &registry(&[]), &allow);
    assert!(!tokens(&violations, "forbidden-api").contains(&"std::env".to_string()));
    assert!(tokens(&violations, "forbidden-api").contains(&"HashMap".to_string()));
    assert_eq!(tokens(&violations, "allowlist"), ["Mutex"]);
}

#[test]
fn registry_parser_roundtrips_the_committed_file() {
    let text =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("fork_labels.txt"))
            .expect("committed registry");
    let reg = parse_registry(&text);
    assert!(
        reg.len() >= 20,
        "registry unexpectedly small: {}",
        reg.len()
    );
    assert!(reg
        .values()
        .all(|d| !d.is_empty() && !d.starts_with("TODO")));
}
