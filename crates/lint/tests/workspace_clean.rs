//! The gate itself, as a test: the real workspace must lint clean, and
//! two scans must agree byte for byte (the walk is sorted, so the report
//! is deterministic by construction — this pins it).

use std::path::Path;

#[test]
fn workspace_lints_clean_and_deterministically() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let first = lotus_lint::run_workspace(&root).expect("scan workspace");
    let errors: Vec<String> = first.violations.iter().map(|v| v.to_string()).collect();
    assert_eq!(
        errors,
        Vec::<String>::new(),
        "workspace has lint violations"
    );
    assert!(
        first.files_scanned >= 60,
        "suspiciously few files: {}",
        first.files_scanned
    );
    assert!(
        first.fork_labels >= 20,
        "suspiciously few labels: {}",
        first.fork_labels
    );

    let second = lotus_lint::run_workspace(&root).expect("rescan workspace");
    assert_eq!(first.violations, second.violations);
    assert_eq!(first.files_scanned, second.files_scanned);
}
